"""The determinism sanitizer's draw-site ledger.

One process-wide :class:`SanitizerLedger` records, when the sanitizer is
enabled (``TRILLIONG_SANITIZE=1``):

- **derivations** — every RNG stream/sub-seed derivation
  (``stream(seed, *labels)``, ``derive_seed``, ``spawn_streams``) with
  its key, the deriving thread, and a call-site + stack fingerprint;
- **draws** — every draw made through a traced generator, with a CRC32
  fingerprint of the drawn values;
- **writes** — every buffer submitted to a format write sink, in
  submission order (which is disk order — the pipeline writes strictly
  in submission order), with per-file sequence numbers and CRC32;
- **violations** — determinism hazards detected as they happen:
  the same stream derived twice (two generators that emit identical
  values — the duplicate-stream hazard RPL111 checks statically), and a
  generator drawn from on a thread other than the one that derived it
  (draw order, and therefore the graph, would depend on scheduling).

Violations are *recorded*, never raised: tests legitimately re-derive
streams to assert determinism, so the ledger observes and reports
rather than aborting.  Event lists are bounded (:data:`MAX_EVENTS` per
category); overflow is counted in :attr:`SanitizerLedger.dropped`.

Everything here is stdlib-only and imports nothing from ``repro`` —
the sanitizer sits at the bottom of the layering next to telemetry so
``core.rng`` and ``formats.pipeline`` can hook into it without cycles.
"""

from __future__ import annotations

import hashlib
import os
import sys
import threading
import zlib
from typing import Any, Sequence

__all__ = [
    "ENV_VAR",
    "MAX_EVENTS",
    "stream_key",
    "sanitize_enabled",
    "enable_sanitize",
    "SanitizerLedger",
    "GeneratorProxy",
    "ledger",
    "reset_sanitizer",
    "record_derivation",
    "trace_stream",
    "record_write",
]

#: Environment variable switching the sanitizer on (``1/true/yes/on``).
#: Off by default: production generation pays one boolean check per
#: stream derivation and per sink write, nothing else.
ENV_VAR = "TRILLIONG_SANITIZE"

_TRUTHY = frozenset({"1", "true", "yes", "on"})

#: Programmatic override: ``None`` defers to the environment.
_override: bool | None = None

#: Events kept per category before the ledger starts dropping (and
#: counting drops) — bounds memory when a whole test suite runs traced.
MAX_EVENTS = 100_000

#: Generator methods that advance stream state (mirrors the linter's
#: ``rng_draw_methods`` policy knob).
DRAW_METHODS = frozenset(
    {"random", "integers", "normal", "standard_normal", "uniform",
     "choice", "shuffle", "permutation", "permuted", "exponential",
     "poisson", "binomial", "geometric", "bytes"})

#: Frames from these files are the sanitizer/rng plumbing itself and
#: never count as the deriving call site.
_PLUMBING_BASENAMES = frozenset({"ledger.py", "rng.py"})


def sanitize_enabled() -> bool:
    """Whether the sanitizer records (override, else env var, default off)."""
    if _override is not None:
        return _override
    return os.environ.get(ENV_VAR, "").strip().lower() in _TRUTHY


def enable_sanitize(on: bool | None) -> None:
    """Force the sanitizer on/off; ``None`` defers back to ``ENV_VAR``."""
    global _override
    _override = on


def _call_site() -> tuple[str, str]:
    """``(site, stack_fp)``: the first stack frame outside the sanitizer
    plumbing as ``basename:lineno``, plus a short digest of the five
    enclosing frames — enough to tell two derivation sites apart without
    storing whole tracebacks."""
    frames: list[str] = []
    frame = sys._getframe(1)
    while frame is not None and len(frames) < 5:
        name = os.path.basename(frame.f_code.co_filename)
        if name not in _PLUMBING_BASENAMES:
            frames.append(f"{name}:{frame.f_lineno}")
        frame = frame.f_back
    site = frames[0] if frames else "<unknown>"
    digest = hashlib.sha256("|".join(frames).encode("utf-8")).hexdigest()
    return site, digest[:12]


def _fingerprint(result: Any) -> int:
    """CRC32 of a draw result: array contents when the result exposes
    ``tobytes()`` (numpy arrays and scalars do), else its ``repr``."""
    tobytes = getattr(result, "tobytes", None)
    if tobytes is not None:
        try:
            return zlib.crc32(tobytes())
        except (TypeError, ValueError):
            pass
    return zlib.crc32(repr(result).encode("utf-8"))


def stream_key(kind: str, seed: int, labels: Sequence[int]) -> str:
    """Canonical ledger key for one derivation, e.g. ``stream:7:0,3``."""
    return f"{kind}:{int(seed)}:{','.join(str(int(x)) for x in labels)}"


class SanitizerLedger:
    """Thread-safe event ledger with live violation detection."""

    def __init__(self, max_events: int = MAX_EVENTS) -> None:
        self.max_events = max_events
        self._lock = threading.Lock()
        self._reset_locked()

    def _reset_locked(self) -> None:
        self.derivations: list[dict] = []
        self.draws: list[dict] = []
        self.writes: list[dict] = []
        self.violations: list[dict] = []
        self.dropped: dict[str, int] = {
            "derivations": 0, "draws": 0, "writes": 0}
        self._seq = 0
        self._first_derivation: dict[str, tuple[int, str]] = {}
        self._write_seq: dict[str, int] = {}

    def reset(self) -> None:
        """Clear all recorded events (tests, worker-process entry)."""
        with self._lock:
            self._reset_locked()

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def _append(self, category: str, record: dict) -> None:
        events: list[dict] = getattr(self, category)
        if len(events) < self.max_events:
            events.append(record)
        else:
            self.dropped[category] += 1

    def _violation(self, code: str, message: str, seq: int) -> None:
        self.violations.append({"seq": seq, "code": code,
                                "message": message})

    # -- recording -----------------------------------------------------

    def record_derivation(self, kind: str, seed: int,
                          labels: Sequence[int]) -> str:
        """Record one stream/sub-seed derivation; returns its key.

        Deriving the same ``(kind, seed, labels)`` twice records a
        ``duplicate-derivation`` violation: the two generators emit
        identical values, silently doubling whatever they drive.
        """
        key = stream_key(kind, seed, labels)
        site, stack_fp = _call_site()
        thread = threading.current_thread()
        with self._lock:
            seq = self._next_seq()
            self._append("derivations", {
                "seq": seq, "kind": kind, "seed": int(seed),
                "labels": [int(x) for x in labels], "key": key,
                "thread": thread.name, "site": site, "stack": stack_fp})
            first = self._first_derivation.get(key)
            if first is None:
                self._first_derivation[key] = (seq, site)
            else:
                self._violation(
                    "duplicate-derivation",
                    f"{key} derived again at {site} (first at "
                    f"{first[1]}, event #{first[0]}): the two streams "
                    f"emit identical values", seq)
        return key

    def record_draw(self, key: str, method: str, result: Any,
                    owner_ident: int | None, owner_name: str) -> None:
        """Record one draw through a traced generator.

        A draw from a thread other than the deriving one records a
        ``cross-thread-draw`` violation: draw *order* then depends on
        scheduling, so the stream's values land nondeterministically.
        """
        thread = threading.current_thread()
        crc = _fingerprint(result)
        with self._lock:
            seq = self._next_seq()
            self._append("draws", {
                "seq": seq, "key": key, "method": method,
                "thread": thread.name, "crc": crc})
            if owner_ident is not None and thread.ident != owner_ident:
                self._violation(
                    "cross-thread-draw",
                    f"{key}.{method}() drawn on thread "
                    f"{thread.name!r} but derived on {owner_name!r}: "
                    f"draw order now depends on scheduling", seq)

    def record_write(self, label: str, nbytes: int, crc: int) -> None:
        """Record one buffer submitted to a write sink.

        ``label`` identifies the file (basename); per-file sequence
        numbers capture submission order, which the pipeline guarantees
        is disk order.
        """
        with self._lock:
            seq = self._next_seq()
            file_seq = self._write_seq.get(label, 0)
            self._write_seq[label] = file_seq + 1
            self._append("writes", {
                "seq": seq, "file": label, "file_seq": file_seq,
                "nbytes": int(nbytes), "crc": crc})

    # -- reading -------------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-able copy of every event category."""
        with self._lock:
            return {
                "derivations": [dict(r) for r in self.derivations],
                "draws": [dict(r) for r in self.draws],
                "writes": [dict(r) for r in self.writes],
                "violations": [dict(r) for r in self.violations],
                "dropped": dict(self.dropped),
            }


class GeneratorProxy:
    """A transparent wrapper over a ``numpy.random.Generator`` that
    records every draw into the ledger and remembers the deriving
    thread.  All non-draw attributes forward untouched; the proxy never
    imports numpy (draw results are fingerprinted duck-typed)."""

    __slots__ = ("_gen", "_key", "_owner_ident", "_owner_name", "_ledger")

    def __init__(self, gen: Any, key: str,
                 owner: "SanitizerLedger | None" = None) -> None:
        thread = threading.current_thread()
        object.__setattr__(self, "_gen", gen)
        object.__setattr__(self, "_key", key)
        object.__setattr__(self, "_owner_ident", thread.ident)
        object.__setattr__(self, "_owner_name", thread.name)
        object.__setattr__(self, "_ledger", owner or _LEDGER)

    def __getattr__(self, name: str) -> Any:
        attr = getattr(self._gen, name)
        if name in DRAW_METHODS and callable(attr):
            key = self._key
            led = self._ledger
            owner_ident = self._owner_ident
            owner_name = self._owner_name

            def _traced(*args: Any, **kwargs: Any) -> Any:
                result = attr(*args, **kwargs)
                led.record_draw(key, name, result, owner_ident,
                                owner_name)
                return result

            return _traced
        return attr

    def __repr__(self) -> str:
        return f"GeneratorProxy({self._key!r}, {self._gen!r})"


_LEDGER = SanitizerLedger()


def ledger() -> SanitizerLedger:
    """The process-wide sanitizer ledger."""
    return _LEDGER


def reset_sanitizer() -> None:
    """Clear the global ledger (tests, worker-process entry)."""
    _LEDGER.reset()


def record_derivation(kind: str, seed: int, labels: Sequence[int]) -> str:
    """Record a derivation on the global ledger (no-op result key when
    called with the sanitizer off — callers gate on
    :func:`sanitize_enabled` to skip even the call)."""
    return _LEDGER.record_derivation(kind, seed, labels)


def trace_stream(gen: Any, kind: str, seed: int,
                 labels: Sequence[int]) -> Any:
    """Record the derivation of ``gen`` and return it wrapped in a
    :class:`GeneratorProxy` so subsequent draws are traced too."""
    key = _LEDGER.record_derivation(kind, seed, labels)
    return GeneratorProxy(gen, key, _LEDGER)


def record_write(file: Any, data: Any) -> None:
    """Record one sink-submitted buffer on the global ledger.

    ``data`` may be ``bytes``, ``str``, or any buffer-protocol object
    (the ADJ6 encoder hands over numpy uint8 arrays directly).
    """
    name = getattr(file, "name", None)
    label = os.path.basename(str(name)) if name is not None else "<buffer>"
    if isinstance(data, str):
        raw: Any = data.encode("utf-8")
    else:
        raw = data
    nbytes = getattr(raw, "nbytes", None)
    if nbytes is None:
        nbytes = len(raw)
    _LEDGER.record_write(label, nbytes, zlib.crc32(raw))
