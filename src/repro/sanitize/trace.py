"""Trace artifacts: serialize the sanitizer ledger for offline diffing.

A trace is one JSON document holding every event the ledger recorded —
derivations, draws, writes, violations — plus a small meta block.  Two
traces of the *same* ``(params, seed, format)`` run must agree event
for event; :mod:`repro.sanitize.diff` pinpoints the first place they
don't, which is the root cause of a byte divergence (the TrillionG
purity guarantee means bytes can only diverge where a draw or a write
did first).

Setting ``TRILLIONG_SANITIZE_TRACE=/path/trace.json`` (with the
sanitizer enabled) writes the trace automatically at interpreter exit,
so any run — CLI, test, benchmark — can be captured without code
changes.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from .ledger import SanitizerLedger, ledger, sanitize_enabled

__all__ = ["TRACE_VERSION", "TRACE_ENV", "write_trace", "load_trace"]

#: Bump when the trace document layout changes.
TRACE_VERSION = 1

#: When set (and the sanitizer is enabled), the global ledger is dumped
#: to this path at interpreter exit.
TRACE_ENV = "TRILLIONG_SANITIZE_TRACE"


def write_trace(path: Path | str,
                source: SanitizerLedger | None = None) -> Path:
    """Serialize ``source`` (default: the global ledger) to ``path``."""
    path = Path(path)
    led = source if source is not None else ledger()
    doc = {"version": TRACE_VERSION, "meta": {"pid": os.getpid()}}
    doc.update(led.snapshot())
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(doc, handle, separators=(",", ":"))
    return path


def load_trace(path: Path | str) -> dict:
    """Load and validate a trace document written by :func:`write_trace`."""
    with open(path, "r", encoding="utf-8") as handle:
        doc = json.load(handle)
    if not isinstance(doc, dict) or doc.get("version") != TRACE_VERSION:
        raise ValueError(
            f"{path}: not a sanitizer trace (expected version "
            f"{TRACE_VERSION}, got {doc.get('version')!r})")
    for key in ("derivations", "draws", "writes", "violations"):
        if not isinstance(doc.get(key), list):
            raise ValueError(f"{path}: malformed trace: missing {key!r}")
    return doc


def _dump_on_exit() -> None:  # pragma: no cover - exercised in subprocess
    target = os.environ.get(TRACE_ENV, "").strip()
    if target and sanitize_enabled():
        write_trace(target)
