"""repro.sanitize — the runtime determinism-and-concurrency sanitizer.

The dynamic half of the determinism analysis layer (the static half is
the reprolint RPL6xx concurrency family).  With ``TRILLIONG_SANITIZE=1``:

- :func:`repro.core.rng.stream` / :func:`~repro.core.rng.derive_seed` /
  :func:`~repro.core.rng.spawn_streams` record every derivation into the
  :func:`ledger`, and returned generators are wrapped so every *draw* is
  recorded too (CRC32 fingerprint of the drawn values);
- the format write sinks (:mod:`repro.formats.pipeline`) record every
  submitted buffer in submission order — which is disk order;
- duplicate stream derivations and cross-thread generator use are
  flagged as **violations** the moment they happen (recorded, not
  raised — see :mod:`.ledger`);
- :func:`write_trace` serializes the ledger, and ``python -m
  repro.sanitize.diff a.json b.json`` pinpoints the first diverging
  draw/write between two runs — the root cause of a byte divergence.
  ``TRILLIONG_SANITIZE_TRACE=/path`` writes the trace automatically at
  exit.

Off-mode cost is one boolean check per stream derivation and per sink
write; output bytes are identical either way (gated by
``BENCH_sanitize`` and the byte-identity tests).

Stdlib-only and imports nothing from ``repro`` — the sanitizer sits at
the bottom of the layering next to :mod:`repro.telemetry`.  See
``docs/determinism.md`` for the derivation contract and the trace-diff
workflow.
"""

from __future__ import annotations

import atexit

from .ledger import (DRAW_METHODS, ENV_VAR, MAX_EVENTS, GeneratorProxy,
                     SanitizerLedger, enable_sanitize, ledger,
                     record_derivation, record_write, reset_sanitizer,
                     sanitize_enabled, stream_key, trace_stream)
from .trace import (TRACE_ENV, TRACE_VERSION, _dump_on_exit, load_trace,
                    write_trace)

__all__ = [
    # switches
    "ENV_VAR", "TRACE_ENV", "sanitize_enabled", "enable_sanitize",
    # ledger
    "SanitizerLedger", "GeneratorProxy", "ledger", "reset_sanitizer",
    "record_derivation", "trace_stream", "record_write", "stream_key",
    "DRAW_METHODS", "MAX_EVENTS",
    # traces
    "TRACE_VERSION", "write_trace", "load_trace",
]


def __getattr__(name: str):
    # ``diff`` is imported lazily (and kept out of ``__all__``) so
    # ``python -m repro.sanitize.diff`` does not find it pre-imported
    # in sys.modules (runpy would warn).
    if name in ("Divergence", "diff_traces"):
        from . import diff as _diff
        return getattr(_diff, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


atexit.register(_dump_on_exit)
