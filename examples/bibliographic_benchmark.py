#!/usr/bin/env python
"""Rich graph benchmark: the paper's bibliographical gMark scenario.

Generates the Section 6 bibliographical database (researchers author
papers, papers appear in journals/conferences) with the ERV model, checks
the Figure 10 degree-distribution contract (Zipfian out / Gaussian in on
the ``author`` predicate), and runs a few linked-data-style queries over
the typed edges.

Run:  python examples/bibliographic_benchmark.py
"""

import numpy as np

from repro.analysis import fit_gaussian, fit_kronecker_class_slope
from repro.rich_graph import RichGraphGenerator, bibliographical_config


def main() -> None:
    config = bibliographical_config(num_vertices=1 << 14)
    print("Graph configuration (Figure 7):")
    for t in config.node_types:
        lo, hi = config.vertex_range(t.name)
        print(f"  node type {t.name:<11s} ratio={t.ratio:.0%} "
              f"ids=[{lo}, {hi})")
    for p in config.predicates:
        print(f"  predicate {p.name:<12s} ratio={p.ratio:.0%}")

    generator = RichGraphGenerator(config, seed=7)
    typed = generator.generate()
    print("\nGenerated rectangles:")
    for t in typed:
        print(f"  {t.rule.source} --{t.rule.predicate}--> "
              f"{t.rule.target}: {t.num_edges:,} edges "
              f"(out={t.rule.out_distribution.kind}, "
              f"in={t.rule.in_distribution.kind})")

    # Figure 10's contract on the author rectangle.
    author = typed[0]
    src_lo, src_hi = config.vertex_range("researcher")
    dst_lo, dst_hi = config.vertex_range("paper")
    out_deg = np.bincount(author.edges[:, 0] - src_lo,
                          minlength=src_hi - src_lo)
    in_deg = np.bincount(author.edges[:, 1] - dst_lo,
                         minlength=dst_hi - dst_lo)
    slope = fit_kronecker_class_slope(out_deg)
    in_fit = fit_gaussian(in_deg)
    print(f"\nauthor out-degree Zipf slope: {slope:.3f} "
          f"(requested {author.rule.out_distribution.slope})")
    print(f"author in-degree: mean={in_fit.mean:.2f} "
          f"std={in_fit.std:.2f} gaussian={in_fit.looks_gaussian}")

    # Linked-data style queries over the typed edge set.
    print("\nQueries:")
    papers_by_researcher = np.bincount(author.edges[:, 0] - src_lo,
                                       minlength=src_hi - src_lo)
    top = np.argsort(papers_by_researcher)[-3:][::-1]
    print("  Q1 most prolific researchers:",
          ", ".join(f"researcher{r} ({papers_by_researcher[r]} papers)"
                    for r in top))

    published = typed[1]
    journals = np.bincount(published.edges[:, 1]
                           - config.vertex_range("journal")[0])
    print(f"  Q2 busiest journal holds {journals.max()} papers")

    # Q3: papers that are both published in a journal and presented at a
    # conference (join over the paper id).
    presented = typed[2]
    both = np.intersect1d(published.edges[:, 0], presented.edges[:, 0])
    print(f"  Q3 papers both published and presented: {both.size:,}")

    # Q4: co-authorship degree — papers with more than one researcher.
    paper_in = np.bincount(author.edges[:, 1] - dst_lo,
                           minlength=dst_hi - dst_lo)
    print(f"  Q4 multi-author papers: {(paper_in > 1).sum():,} "
          f"of {dst_hi - dst_lo:,}")


if __name__ == "__main__":
    main()
