#!/usr/bin/env python
"""Graph scaling: learn a graph's seed parameters and regenerate bigger.

The paper's related-work section points at GSCALER ("synthetically scaling
a given graph") as a direction TrillionG's machinery can serve.  This
example closes that loop:

1. take an "observed" graph (here: generated with a hidden seed matrix),
2. recover its seed parameters by moment matching (``repro.fit``),
3. regenerate at 16x the size with the recursive vector model,
4. verify the scaled graph preserves the original's degree-distribution
   shape and density.

Run:  python examples/graph_scaling.py
"""

import numpy as np

from repro import RecursiveVectorGenerator, SeedMatrix
from repro.analysis import fit_kronecker_class_slope, out_degrees
from repro.fit import GraphScaler

HIDDEN_SEED = SeedMatrix.rmat(0.52, 0.22, 0.16, 0.10)


def main() -> None:
    # The "observed" graph (pretend we don't know HIDDEN_SEED).
    observed = RecursiveVectorGenerator(13, 12, HIDDEN_SEED,
                                        seed=3).edges()
    n_small = 1 << 13
    print(f"Observed graph: |V|={n_small:,}, |E|={observed.shape[0]:,}")

    scaler = GraphScaler.fit(observed, n_small)
    fitted = scaler.seed_matrix
    print("\nRecovered seed matrix (truth in parens):")
    for name, got, want in zip("abcd", fitted.as_tuple(),
                               HIDDEN_SEED.as_tuple()):
        print(f"  {name} = {got:.4f}  ({want})")

    target_scale = 17
    big = scaler.scale_to(target_scale, seed=4)
    n_big = 1 << target_scale
    print(f"\nScaled graph: |V|={n_big:,}, |E|={big.shape[0]:,} "
          f"({big.shape[0] / observed.shape[0]:.1f}x the edges)")

    slope_small = fit_kronecker_class_slope(out_degrees(observed, n_small))
    slope_big = fit_kronecker_class_slope(out_degrees(big, n_big))
    density_small = observed.shape[0] / n_small
    density_big = big.shape[0] / n_big
    print("\nProperty preservation:")
    print(f"  degree slope : {slope_small:.3f} -> {slope_big:.3f} "
          f"(Lemma 6 for the fit: {fitted.out_zipf_slope():.3f})")
    print(f"  mean degree  : {density_small:.2f} -> {density_big:.2f}")
    assert abs(slope_small - slope_big) < 0.4
    assert abs(density_small - density_big) / density_small < 0.05
    print("\nScaled graph preserves the original's shape. Done.")


if __name__ == "__main__":
    main()
