#!/usr/bin/env python
"""Graph500-style workload: generate, construct CSR, run BFS.

The Graph500 benchmark (the paper's Appendix D comparison target) times
two kernels: graph generation/construction and breadth-first search from
random roots.  This example runs that workload end to end on the
reproduction: an NSKG graph with scrambled vertex IDs, CSR construction,
and 8 validated BFS iterations, reporting TEPS (traversed edges per
second) as the benchmark does.

Run:  python examples/graph500_workload.py
"""

import time

import numpy as np

from repro.analysis import (bfs_parents, graph_stats, reachable_count,
                            validate_bfs_parents)
from repro.models import Graph500Generator


def main() -> None:
    scale = 14
    print(f"Kernel 1: generation + construction (scale {scale}, NSKG "
          "noise 0.1, scrambled ids)")
    t0 = time.perf_counter()
    gen = Graph500Generator(scale, 16, seed=1, noise=0.1)
    edges = gen.generate()
    indptr, indices = gen.csr
    t_construct = time.perf_counter() - t0
    n = gen.num_vertices
    print(f"  {edges.shape[0]:,} edges in {t_construct:.2f}s; "
          f"construction share "
          f"{gen.construction_overhead_ratio() * 100:.1f}%")
    print(f"  {graph_stats(edges, n)}")

    print("\nKernel 2: BFS from 8 random roots")
    rng = np.random.default_rng(0)
    degs = np.diff(indptr)
    candidates = np.nonzero(degs > 0)[0]   # Graph500: roots with degree >= 1
    teps = []
    for i in range(8):
        root = int(rng.choice(candidates))
        t0 = time.perf_counter()
        parent = bfs_parents(indptr, indices, root, n)
        dt = time.perf_counter() - t0
        traversed = int(degs[parent >= 0].sum())
        ok = validate_bfs_parents(parent, root, indptr, indices)
        teps.append(traversed / dt)
        print(f"  BFS {i}: root={root:>6} "
              f"reached={reachable_count(parent):>6} "
              f"TEPS={traversed / dt:,.0f} valid={ok}")
        assert ok, "BFS validation failed"
    print(f"\nHarmonic-mean TEPS: "
          f"{len(teps) / sum(1 / t for t in teps):,.0f}")


if __name__ == "__main__":
    main()
