#!/usr/bin/env python
"""Realism report: the properties that make a synthetic graph "realistic".

The paper's motivation is that trillion-scale synthetic graphs in use are
"unrealistic ... and do not follow the power-law degree distribution".
This example generates three graphs — TrillionG (Graph500 seed), TrillionG
with NSKG noise, and an Erdős–Rényi control — and prints the realism
metrics side by side: degree slope, max degree, oscillation, reciprocity,
clustering, effective diameter.

Run:  python examples/realism_report.py
"""

import numpy as np

from repro import RecursiveVectorGenerator
from repro.analysis import (clustering_coefficient_sampled,
                            effective_diameter, fit_kronecker_class_slope,
                            oscillation_score, out_degrees, reciprocity)
from repro.models import ErdosRenyiGenerator

SCALE = 13
N = 1 << SCALE


def metrics(name: str, edges: np.ndarray) -> dict:
    degs = out_degrees(edges, N)
    try:
        slope = f"{fit_kronecker_class_slope(degs):.3f}"
    except ValueError:
        slope = "n/a"
    return {
        "graph": name,
        "|E|": f"{edges.shape[0]:,}",
        "d_max": int(degs.max()),
        "zipf slope": slope,
        "oscillation": f"{oscillation_score(degs):.3f}",
        "reciprocity": f"{reciprocity(edges, N):.3f}",
        "clustering": f"{clustering_coefficient_sampled(edges, N, 4000):.3f}",
        "eff. diameter": f"{effective_diameter(edges, N, samples=12):.2f}",
    }


def main() -> None:
    rows = []
    print(f"Generating three scale-{SCALE} graphs...")
    tg = RecursiveVectorGenerator(SCALE, 16, seed=1).edges()
    rows.append(metrics("TrillionG", tg))
    noisy = RecursiveVectorGenerator(SCALE, 16, seed=1, noise=0.1).edges()
    rows.append(metrics("TrillionG+NSKG", noisy))
    er = ErdosRenyiGenerator(SCALE, 16, seed=1).generate()
    rows.append(metrics("Erdos-Renyi", er))

    headers = list(rows[0])
    widths = [max(len(h), max(len(str(r[h])) for r in rows))
              for h in headers]
    print()
    print("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    print("  ".join("-" * w for w in widths))
    for r in rows:
        print("  ".join(str(r[h]).ljust(w)
                        for h, w in zip(headers, widths)))

    print("\nReading the table:")
    print("- TrillionG's heavy-tailed degrees (large d_max, negative "
          "slope) versus ER's thin tail;")
    print("- NSKG noise keeps the tail but lowers the oscillation "
          "(Figure 9's point);")
    print("- the scale-free graphs keep a small effective diameter.")


if __name__ == "__main__":
    main()
