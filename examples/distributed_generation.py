#!/usr/bin/env python
"""Distributed generation with the Figure 6 range partitioner.

Spins up a local "cluster" (worker processes standing in for the paper's
machines x threads), partitions the vertex range so each worker gets
~|E|/P edges, generates part files in parallel, and verifies that the
distributed output is bit-identical to a sequential run — the determinism
property TrillionG's AVS-level partitioning is designed around.

Run:  python examples/distributed_generation.py
"""

import tempfile

import numpy as np

from repro import RecursiveVectorGenerator
from repro.dist import ClusterSpec, LocalCluster, range_partition


def main() -> None:
    scale = 14
    generator = RecursiveVectorGenerator(scale=scale, edge_factor=16,
                                         seed=99, block_size=128)
    spec = ClusterSpec(machines=2, threads_per_machine=2)
    print(f"Cluster: {spec.machines} machines x "
          f"{spec.threads_per_machine} threads = {spec.num_workers} "
          "workers")

    print("\nStep 1-3 (combine/gather/repartition):")
    ranges = range_partition(generator, spec.num_workers)
    for i, r in enumerate(ranges):
        print(f"  worker {i}: vertices [{r.start:>6}, {r.stop:>6})  "
              f"~{int(r.mass):,} edges")

    with tempfile.TemporaryDirectory() as tmp:
        print("\nStep 4 (scatter) + generation:")
        cluster = LocalCluster(spec)
        result = cluster.generate_to_files(generator, tmp, "adj6")
        for w in result.workers:
            print(f"  worker {w.worker}: {w.num_edges:,} edges in "
                  f"{w.elapsed_seconds:.2f}s -> {w.path.split('/')[-1]}")
        print(f"  total: {result.num_edges:,} edges, "
              f"load skew {result.skew:.3f} "
              f"(1.0 = perfectly balanced)")

        print("\nVerification against a sequential run:")
        dist_edges = cluster.read_all_edges(result)
        seq_edges = RecursiveVectorGenerator(
            scale=scale, edge_factor=16, seed=99, block_size=128).edges()
        order = np.lexsort((dist_edges[:, 1], dist_edges[:, 0]))
        seq_order = np.lexsort((seq_edges[:, 1], seq_edges[:, 0]))
        identical = np.array_equal(dist_edges[order], seq_edges[seq_order])
        print(f"  distributed == sequential: {identical}")
        assert identical


if __name__ == "__main__":
    main()
