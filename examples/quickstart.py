#!/usr/bin/env python
"""Quickstart: generate a synthetic graph and inspect its properties.

Generates a Graph500-standard graph (scale 14, edge factor 16) with the
recursive vector model, verifies the paper's headline properties (power-law
degrees, Lemma 6 slope, no repeated edges), and writes it in all three
output formats.

Run:  python examples/quickstart.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import GRAPH500, RecursiveVectorGenerator
from repro.analysis import (degree_histogram, fit_kronecker_class_slope,
                            graph_stats, out_degrees)
from repro.formats import get_format


def main() -> None:
    scale = 14
    generator = RecursiveVectorGenerator(scale=scale, edge_factor=16,
                                         seed=42)
    print(f"Generating |V| = 2^{scale} = {generator.num_vertices:,}, "
          f"target |E| = {generator.num_edges:,} ...")
    edges = generator.edges()

    stats = graph_stats(edges, generator.num_vertices)
    print(f"\nGraph statistics: {stats}")
    assert stats.is_simple, "the recursive vector model deduplicates"

    # The paper's realism claim: a power-law (Zipfian) degree distribution
    # whose slope is dictated by the seed matrix (Lemma 6).
    degrees = out_degrees(edges, generator.num_vertices)
    slope = fit_kronecker_class_slope(degrees)
    print(f"\nMeasured Zipf class slope: {slope:.3f} "
          f"(Lemma 6 predicts {GRAPH500.out_zipf_slope():.3f})")

    hist = degree_histogram(degrees)
    print("\nDegree distribution (head):")
    print("degree  #vertices")
    for d, c in list(zip(hist.degrees, hist.counts))[:10]:
        print(f"{d:6d}  {c}")

    # Write all three formats and compare sizes (Section 5).
    with tempfile.TemporaryDirectory() as tmp:
        print("\nOutput formats:")
        for name in ("tsv", "adj6", "csr6"):
            fmt = get_format(name)
            result = fmt.write(Path(tmp) / f"graph.{name}",
                               generator.iter_adjacency(),
                               generator.num_vertices)
            print(f"  {name:5s}: {result.bytes_written:>10,} bytes "
                  f"({result.num_edges:,} edges)")

    print("\nDone.")


if __name__ == "__main__":
    main()
