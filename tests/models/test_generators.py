"""Behavioural tests for every scope-based generator."""

import numpy as np
import pytest
from scipy import stats as sps

from repro.core.seed import GRAPH500, UNIFORM, SeedMatrix
from repro.models import (ALL_MODELS, BarabasiAlbertGenerator,
                          ErdosRenyiGenerator, FastKroneckerGenerator,
                          Graph500Generator, KroneckerAesGenerator,
                          RmatDiskGenerator, RmatMemGenerator,
                          TegGenerator, TrillionGSeqGenerator,
                          WespDiskGenerator, WespMemGenerator,
                          rmat_edge_batch, scramble_vertices)
from repro.errors import ConfigurationError


@pytest.mark.parametrize("name,cls", sorted(ALL_MODELS.items()))
class TestAllModelsContract:
    """Every registered model obeys the shared generator contract."""

    def test_edges_valid(self, name, cls):
        g = cls(8, 8, seed=1)
        e = g.generate()
        assert e.ndim == 2 and e.shape[1] == 2
        assert e.min() >= 0 and e.max() < 256

    def test_report_filled(self, name, cls):
        g = cls(8, 8, seed=1)
        e = g.generate()
        assert g.report.realized_edges == e.shape[0]
        assert g.report.elapsed_seconds > 0
        assert g.report.model == name

    def test_deterministic(self, name, cls):
        e1 = cls(8, 8, seed=42).generate()
        e2 = cls(8, 8, seed=42).generate()
        np.testing.assert_array_equal(e1, e2)

    def test_complexity_metadata(self, name, cls):
        assert cls.complexity.time != "?"
        assert cls.complexity.space != "?"


class TestRmat:
    def test_exactly_num_edges(self):
        g = RmatMemGenerator(9, 8, seed=3)
        assert g.generate().shape[0] == g.num_edges

    def test_no_duplicates(self):
        g = RmatMemGenerator(9, 8, seed=3)
        e = g.generate()
        assert np.unique(g.pack_edges(e)).size == e.shape[0]

    def test_edge_batch_respects_seed_skew(self):
        """With the Graph500 seed, quadrant alpha dominates, so low
        vertex IDs must be overrepresented."""
        rng = np.random.default_rng(0)
        batch = rmat_edge_batch(GRAPH500, 8, 20000, rng)
        low = (batch[:, 0] < 128).mean()
        assert low > 0.7  # alpha+beta = 0.76 expected

    def test_uniform_seed_is_uniform(self):
        rng = np.random.default_rng(0)
        batch = rmat_edge_batch(UNIFORM, 8, 40000, rng)
        low = (batch[:, 0] < 128).mean()
        assert abs(low - 0.5) < 0.02

    def test_disk_variant_no_duplicates(self):
        g = RmatDiskGenerator(9, 8, seed=3, batch_edges=1000)
        e = g.generate()
        assert np.unique(g.pack_edges(e)).size == e.shape[0]

    def test_disk_close_to_mem_count(self):
        # epsilon=0.01 is the paper's large-scale setting; at scale 10 the
        # duplicate rate is ~17%, so a matching epsilon is supplied here.
        mem = RmatMemGenerator(10, 8, seed=3).generate()
        disk = RmatDiskGenerator(10, 8, seed=3, batch_edges=2048,
                                 epsilon=0.25).generate()
        assert abs(disk.shape[0] - mem.shape[0]) / mem.shape[0] < 0.1

    def test_disk_epsilon_undershoots_at_small_scale(self):
        # Documents the paper's observation that the proper epsilon falls
        # as |E| grows: at small scale 0.01 leaves a visible shortfall.
        g = RmatDiskGenerator(10, 8, seed=3, batch_edges=2048)
        e = g.generate()
        assert 0.7 * g.num_edges < e.shape[0] < g.num_edges

    def test_disk_peak_memory_bounded_by_batch(self):
        g = RmatDiskGenerator(10, 8, seed=3, batch_edges=512)
        g.generate()
        assert g.report.peak_memory_bytes == 512 * 16


class TestFastKronecker:
    def test_n2_matches_rmat_distribution(self):
        """FastKronecker with a 2x2 seed is RMAT (same stochastic process,
        same per-batch implementation)."""
        rng1 = np.random.default_rng(5)
        rng2 = np.random.default_rng(5)
        from repro.models import fast_kronecker_edge_batch
        a = rmat_edge_batch(GRAPH500, 8, 1000, rng1)
        b = fast_kronecker_edge_batch(GRAPH500, 8, 1000, rng2)
        np.testing.assert_array_equal(a, b)

    def test_3x3_seed(self):
        seed3 = SeedMatrix(np.array([[0.3, 0.1, 0.1],
                                     [0.1, 0.1, 0.05],
                                     [0.1, 0.05, 0.1]]))
        # |V| = 3^5 is not a power of two: bypass scale by giving num_edges.
        g = FastKroneckerGenerator.__new__(FastKroneckerGenerator)
        with pytest.raises(ConfigurationError):
            FastKroneckerGenerator(8, 8, seed_matrix=seed3)

    def test_4x4_seed_works(self):
        entries = np.full((4, 4), 1.0 / 16)
        g = FastKroneckerGenerator(8, 8, seed_matrix=SeedMatrix(entries),
                                   seed=1)
        assert g.depth == 4  # 4^4 = 2^8
        e = g.generate()
        assert e.shape[0] == g.num_edges


class TestKroneckerAes:
    def test_refuses_large_scale(self):
        with pytest.raises(ConfigurationError):
            KroneckerAesGenerator(20, 16)

    def test_edge_count_near_target(self):
        g = KroneckerAesGenerator(10, 8, seed=1)
        e = g.generate()
        # AES realizes ~|E| edges in expectation (cells clipped at p=1
        # lose a little mass).
        assert abs(e.shape[0] - g.num_edges) / g.num_edges < 0.15

    def test_no_duplicates_by_construction(self):
        g = KroneckerAesGenerator(9, 8, seed=1)
        e = g.generate()
        assert np.unique(g.pack_edges(e)).size == e.shape[0]

    def test_same_family_as_rmat(self):
        """AES and WES generate the same graph family: their out-degree
        distributions agree (KS test)."""
        aes = KroneckerAesGenerator(10, 8, seed=2).generate()
        wes = RmatMemGenerator(10, 8, seed=3).generate()
        d1 = np.bincount(aes[:, 0], minlength=1024)
        d2 = np.bincount(wes[:, 0], minlength=1024)
        assert sps.ks_2samp(d1, d2).pvalue > 1e-4


class TestWesp:
    def test_mem_and_disk_agree(self):
        mem = WespMemGenerator(9, 8, seed=4, num_workers=3).generate()
        disk = WespDiskGenerator(9, 8, seed=4, num_workers=3,
                                 batch_edges=512).generate()
        np.testing.assert_array_equal(mem, disk)

    def test_no_duplicates_after_merge(self):
        g = WespMemGenerator(9, 8, seed=4, num_workers=4)
        e = g.generate()
        assert np.unique(g.pack_edges(e)).size == e.shape[0]

    def test_worker_count_changes_realization_not_family(self):
        e2 = WespMemGenerator(10, 8, seed=4, num_workers=2).generate()
        e8 = WespMemGenerator(10, 8, seed=4, num_workers=8).generate()
        d2 = np.bincount(e2[:, 0], minlength=1024)
        d8 = np.bincount(e8[:, 0], minlength=1024)
        assert sps.ks_2samp(d2, d8).pvalue > 1e-4

    def test_skew_recorded(self):
        g = WespMemGenerator(9, 8, seed=4, num_workers=4)
        g.generate()
        assert g.skew >= 1.0

    def test_phases_present(self):
        g = WespDiskGenerator(8, 8, seed=4, num_workers=2)
        g.generate()
        assert {"generate", "shuffle", "merge"} <= set(
            g.report.phase_seconds)


class TestTeG:
    def test_degrees_statically_fixed(self):
        """TeG's out-degrees are deterministic: two different random seeds
        produce identical out-degree sequences (only destinations move)."""
        e1 = TegGenerator(9, 8, seed=1).generate()
        e2 = TegGenerator(9, 8, seed=2).generate()
        d1 = np.bincount(e1[:, 0], minlength=512)
        d2 = np.bincount(e2[:, 0], minlength=512)
        np.testing.assert_array_equal(d1, d2)

    def test_stochastic_models_differ_across_seeds(self):
        e1 = TrillionGSeqGenerator(9, 8, seed=1).generate()
        e2 = TrillionGSeqGenerator(9, 8, seed=2).generate()
        d1 = np.bincount(e1[:, 0], minlength=512)
        d2 = np.bincount(e2[:, 0], minlength=512)
        assert not np.array_equal(d1, d2)

    def test_fewer_distinct_degree_values_than_stochastic(self):
        """The static fixing collapses the degree distribution's support —
        the visual failure in Figure 8."""
        teg = TegGenerator(11, 16, seed=1).generate()
        tg = TrillionGSeqGenerator(11, 16, seed=1).generate()
        teg_support = np.unique(np.bincount(teg[:, 0], minlength=2048)).size
        tg_support = np.unique(np.bincount(tg[:, 0], minlength=2048)).size
        assert teg_support < 0.7 * tg_support


class TestGraph500Model:
    def test_scramble_is_bijection(self):
        for scale in (4, 5, 8, 11):
            xs = np.arange(1 << scale, dtype=np.int64)
            ys = scramble_vertices(xs, scale)
            assert np.unique(ys).size == 1 << scale
            assert ys.min() >= 0 and ys.max() < (1 << scale)

    def test_scramble_moves_hub(self):
        ys = scramble_vertices(np.arange(16, dtype=np.int64), 10)
        assert not np.array_equal(ys, np.arange(16))

    def test_csr_construction(self):
        g = Graph500Generator(9, 8, seed=6)
        e = g.generate()
        indptr, indices = g.csr
        assert indptr[-1] == e.shape[0]
        assert indices.size == e.shape[0]
        # CSR row u holds exactly u's destinations.
        deg = np.bincount(e[:, 0], minlength=512)
        np.testing.assert_array_equal(np.diff(indptr), deg)

    def test_construction_overhead_ratio(self):
        g = Graph500Generator(9, 8, seed=6)
        g.generate()
        assert 0.0 < g.construction_overhead_ratio() < 1.0

    def test_noise_default(self):
        assert Graph500Generator(8, 8).noise == 0.1


class TestBarabasiAlbert:
    def test_power_law_tail(self):
        g = BarabasiAlbertGenerator(12, 8, seed=7)
        e = g.generate()
        deg = np.bincount(e.ravel(), minlength=4096)
        # Heavy tail: max total degree far above the mean.
        assert deg.max() > 10 * deg.mean()

    def test_rejects_huge_edge_factor(self):
        with pytest.raises(ConfigurationError):
            BarabasiAlbertGenerator(4, 100)

    def test_new_vertices_attach_m_edges(self):
        g = BarabasiAlbertGenerator(10, 4, seed=7)
        e = g.generate()
        out_deg = np.bincount(e[:, 0], minlength=1024)
        m = g.edges_per_vertex
        assert np.all(out_deg[m + 1:] == m)


class TestErdosRenyi:
    def test_exact_count_distinct(self):
        g = ErdosRenyiGenerator(10, 8, seed=8)
        e = g.generate()
        assert e.shape[0] == g.num_edges
        assert np.unique(g.pack_edges(e)).size == e.shape[0]

    def test_matches_uniform_rmat(self):
        """Paper Section 8: ER == RMAT with the all-0.25 seed."""
        er = ErdosRenyiGenerator(10, 8, seed=9).generate()
        rmat = RmatMemGenerator(10, 8, seed_matrix=UNIFORM,
                                seed=10).generate()
        d1 = np.bincount(er[:, 0], minlength=1024)
        d2 = np.bincount(rmat[:, 0], minlength=1024)
        assert sps.ks_2samp(d1, d2).pvalue > 1e-4
