"""Memory-budget behaviour across every model — the O.O.M mechanics of
Figures 11 and 14 as a test matrix."""

import numpy as np
import pytest

from repro.errors import OutOfMemoryError
from repro.models import (ALL_MODELS, FastKroneckerGenerator,
                          Graph500Generator, RmatDiskGenerator,
                          RmatMemGenerator, TrillionGSeqGenerator,
                          WespDiskGenerator, WespMemGenerator)

TIGHT = 64 * 1024          # "32 GB" scaled down
SCALE = 12

#: Which models must die under a tight budget at this scale (their
#: working set is O(|E|)), and which must survive (scope/batch bounded).
MUST_OOM = [RmatMemGenerator, FastKroneckerGenerator, Graph500Generator,
            WespMemGenerator]
MUST_SURVIVE = [
    (RmatDiskGenerator, {"batch_edges": 2048}),
    (WespDiskGenerator, {"batch_edges": 2048}),
    (TrillionGSeqGenerator, {"block_size": 64}),
]


@pytest.mark.parametrize("cls", MUST_OOM, ids=lambda c: c.name)
def test_in_memory_models_oom(cls):
    g = cls(SCALE, 16, seed=1, memory_budget=TIGHT)
    with pytest.raises(OutOfMemoryError) as info:
        g.generate()
    assert info.value.required_bytes > TIGHT


@pytest.mark.parametrize("cls,kwargs", MUST_SURVIVE,
                         ids=lambda x: getattr(x, "name", ""))
def test_bounded_models_survive(cls, kwargs):
    g = cls(SCALE, 16, seed=1, memory_budget=TIGHT, **kwargs)
    edges = g.generate()
    assert edges.shape[0] > 10000


@pytest.mark.parametrize("cls", MUST_OOM, ids=lambda c: c.name)
def test_oom_scale_threshold_monotone(cls):
    """If a model fits at scale s, it fits at s-1; the OOM wall is a
    single threshold, as the figures draw it."""
    budget = 512 * 1024
    outcomes = []
    for scale in (8, 10, 12, 14):
        try:
            cls(scale, 16, seed=1, memory_budget=budget).generate()
            outcomes.append(True)
        except OutOfMemoryError:
            outcomes.append(False)
    # Once False, never True again.
    seen_false = False
    for ok in outcomes:
        if not ok:
            seen_false = True
        assert not (seen_false and ok), outcomes


def test_budget_error_reports_requirements():
    g = RmatMemGenerator(14, 16, memory_budget=1)
    with pytest.raises(OutOfMemoryError) as info:
        g.generate()
    message = str(info.value)
    assert "GiB" in message
    assert info.value.budget_bytes == 1
