"""Unit tests for the scope-based framework (repro.models.base)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, OutOfMemoryError
from repro.models import RmatMemGenerator, TrillionGSeqGenerator, dedup_edges
from repro.models.base import GenerationReport


class TestGenerationReport:
    def test_phase_timer_accumulates(self):
        r = GenerationReport(model="x")
        with r.time_phase("a"):
            pass
        with r.time_phase("a"):
            pass
        with r.time_phase("b"):
            pass
        assert set(r.phase_seconds) == {"a", "b"}
        assert r.elapsed_seconds >= 0

    def test_elapsed_sums_phases(self):
        r = GenerationReport(model="x")
        r.phase_seconds = {"a": 1.0, "b": 2.5}
        assert r.elapsed_seconds == 3.5


class TestMemoryBudget:
    def test_rmat_mem_ooms_under_small_budget(self):
        g = RmatMemGenerator(12, 16, memory_budget=1024)
        with pytest.raises(OutOfMemoryError) as info:
            g.generate()
        assert info.value.required_bytes > info.value.budget_bytes

    def test_rmat_mem_fits_large_budget(self):
        g = RmatMemGenerator(8, 8, memory_budget=1 << 30)
        assert g.generate().shape[0] == 8 * 256

    def test_trilliong_fits_where_rmat_ooms(self):
        """The scale-up claim: under the same budget the AVS model runs
        where the WES model cannot (Figure 11(a)'s O.O.M bars)."""
        budget = 64 * 1024
        with pytest.raises(OutOfMemoryError):
            RmatMemGenerator(12, 16, memory_budget=budget).generate()
        g = TrillionGSeqGenerator(12, 16, memory_budget=budget,
                                  block_size=64)
        assert g.generate().shape[0] > 0

    def test_no_budget_means_no_check(self):
        g = RmatMemGenerator(8, 8)
        g.check_memory_budget()  # must not raise


class TestValidation:
    def test_bad_scale(self):
        with pytest.raises(ConfigurationError):
            RmatMemGenerator(0)

    def test_bad_num_edges(self):
        with pytest.raises(ConfigurationError):
            RmatMemGenerator(8, num_edges=0)


class TestPackUnpack:
    def test_roundtrip(self):
        g = RmatMemGenerator(8, 8)
        edges = np.array([[0, 0], [3, 200], [255, 255]], dtype=np.int64)
        packed = g.pack_edges(edges)
        np.testing.assert_array_equal(g.unpack_edges(packed), edges)


class TestDedupEdges:
    def test_removes_duplicates(self):
        edges = np.array([[1, 2], [1, 2], [3, 4]], dtype=np.int64)
        out, dropped = dedup_edges(edges, 16)
        assert dropped == 1
        assert out.tolist() == [[1, 2], [3, 4]]

    def test_empty(self):
        out, dropped = dedup_edges(np.empty((0, 2), dtype=np.int64), 16)
        assert out.shape[0] == 0
        assert dropped == 0

    def test_sorted_output(self):
        edges = np.array([[5, 1], [0, 9], [5, 0]], dtype=np.int64)
        out, _ = dedup_edges(edges, 16)
        assert out.tolist() == [[0, 9], [5, 0], [5, 1]]
