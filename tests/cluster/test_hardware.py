"""Tests for the cluster hardware specifications."""

import pytest

from repro.cluster.hardware import (GIGABIT_ETHERNET, INFINIBAND_EDR,
                                    PAPER_CLUSTER, PAPER_CLUSTER_IB,
                                    PAPER_PC, SINGLE_PC, ClusterHardware,
                                    MachineSpec, NetworkSpec)


class TestSpecs:
    def test_paper_pc_matches_section_7_1(self):
        """'Each PC is equipped with a single six-core 3.50 GHz CPU,
        32 GB memory, and 4 TB HDD.'"""
        assert PAPER_PC.cores == 6
        assert PAPER_PC.cpu_ghz == 3.5
        assert PAPER_PC.memory_bytes == 32 * 1024**3
        assert PAPER_PC.disk_bytes == 4 * 10**12

    def test_networks(self):
        assert GIGABIT_ETHERNET.bandwidth_bytes_per_sec == 125e6
        assert INFINIBAND_EDR.bandwidth_bytes_per_sec == 12.5e9
        # IB is the '100 times slower network' statement, inverted.
        ratio = (INFINIBAND_EDR.bandwidth_bytes_per_sec
                 / GIGABIT_ETHERNET.bandwidth_bytes_per_sec)
        assert ratio == 100

    def test_paper_cluster_shape(self):
        """'a cluster of one master PC and ten slave PCs ... six threads
        per PC, a total of 60 threads.'"""
        assert PAPER_CLUSTER.machines == 10
        assert PAPER_CLUSTER.threads_per_machine == 6
        assert PAPER_CLUSTER.total_threads == 60

    def test_aggregates(self):
        assert PAPER_CLUSTER.total_memory_bytes == 10 * 32 * 1024**3
        assert PAPER_CLUSTER.total_disk_bytes == 40 * 10**12
        assert PAPER_CLUSTER.aggregate_disk_write == 10 * 110e6

    def test_storage_capacity_statement(self):
        """'the cluster has 35 TB storage capacity on HDFS' — raw is
        40 TB, so the usable capacity claim fits under the raw total."""
        assert PAPER_CLUSTER.total_disk_bytes >= 35 * 10**12

    def test_with_network(self):
        ib = PAPER_CLUSTER.with_network(INFINIBAND_EDR)
        assert ib.network == INFINIBAND_EDR
        assert ib.machines == PAPER_CLUSTER.machines
        assert PAPER_CLUSTER_IB == ib

    def test_single_pc(self):
        assert SINGLE_PC.total_threads == 1
        assert SINGLE_PC.machines == 1

    def test_custom_cluster(self):
        c = ClusterHardware(machines=3,
                            machine=MachineSpec(cores=4),
                            network=NetworkSpec("test", 1e9),
                            threads_per_machine=2)
        assert c.total_threads == 6
