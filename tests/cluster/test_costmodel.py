"""Tests for the cluster cost model — the paper-scale shape claims.

These tests encode the qualitative results of Figures 11, 12 and 14: who
wins, by what kind of factor, and where the O.O.M walls fall.  Exact
seconds are calibration, not correctness; the assertions are about shape.
"""

import math

import pytest

from repro.cluster import (PAPER_CLUSTER, PAPER_CLUSTER_IB, SINGLE_PC,
                           CostModel, figure11a_series, figure11b_series,
                           figure12_series, figure14_series,
                           single_pc_model)


@pytest.fixture(scope="module")
def single():
    return single_pc_model()


@pytest.fixture(scope="module")
def cluster():
    return CostModel(PAPER_CLUSTER)


class TestFigure11aShape:
    def test_trilliong_beats_everyone(self, single):
        for scale in range(20, 26):
            tg = single.trilliong_seq(scale).elapsed_seconds
            assert tg < single.rmat_mem(scale).elapsed_seconds
            assert tg < single.rmat_disk(scale).elapsed_seconds
            assert tg < single.fast_kronecker(scale).elapsed_seconds

    def test_speedup_vs_fastkronecker_order_of_magnitude(self, single):
        """Paper: 'outperforms FastKronecker by up to 10 times for
        Scale 25'."""
        ratio = (single.fast_kronecker(25).elapsed_seconds
                 / single.trilliong_seq(25).elapsed_seconds)
        assert 4 < ratio < 20

    def test_in_memory_models_oom_at_26(self, single):
        """Paper: RMAT-mem and FastKronecker fail at scale 26 with 32 GB."""
        assert not single.rmat_mem(25).oom
        assert single.rmat_mem(26).oom
        assert not single.fast_kronecker(25).oom
        assert single.fast_kronecker(26).oom

    def test_disk_variants_reach_scale_28(self, single):
        assert not single.rmat_disk(28).oom
        assert not single.trilliong_seq(28).oom

    def test_rmat_disk_about_18x_slower_at_28(self, single):
        """Paper: RMAT-disk is 18.5x slower than TrillionG/seq at 28."""
        ratio = (single.rmat_disk(28).elapsed_seconds
                 / single.trilliong_seq(28).elapsed_seconds)
        assert 10 < ratio < 30

    def test_aes_is_hopeless(self, single):
        """Original Kronecker: O(|V|^2) dwarfs everything by scale 25."""
        aes = single.kronecker_aes(25).elapsed_seconds
        assert aes > 100 * single.rmat_mem(25).elapsed_seconds


class TestFigure11bShape:
    def test_trilliong_beats_wesp_everywhere(self, cluster):
        for scale in range(24, 29):
            tg = cluster.trilliong(scale, "adj6").elapsed_seconds
            assert tg < cluster.wesp_mem(scale).elapsed_seconds
            assert tg < cluster.wesp_disk(scale).elapsed_seconds

    def test_adj6_faster_than_tsv(self, cluster):
        for scale in range(26, 32):
            assert (cluster.trilliong(scale, "adj6").elapsed_seconds
                    < cluster.trilliong(scale, "tsv").elapsed_seconds)

    def test_wesp_mem_oom_wall(self, cluster):
        """Paper: the largest graph RMAT/p-mem can generate is scale 28."""
        assert not cluster.wesp_mem(28).oom
        assert cluster.wesp_mem(29).oom

    def test_gap_grows_with_scale(self, cluster):
        """Paper: 'the performance gap increases as the scale increases',
        reaching ~98x at scale 31."""
        gap_24 = (cluster.wesp_disk(24).elapsed_seconds
                  / cluster.trilliong(24, "adj6").elapsed_seconds)
        gap_31 = (cluster.wesp_disk(31).elapsed_seconds
                  / cluster.trilliong(31, "adj6").elapsed_seconds)
        assert gap_31 > 3 * gap_24
        assert 50 < gap_31 < 250


class TestFigure12Shape:
    def test_time_proportional_to_scale(self, cluster):
        """Paper: elapsed time is strictly proportional to graph size."""
        prev = cluster.trilliong(33, "adj6").elapsed_seconds
        for scale in range(34, 39):
            now = cluster.trilliong(scale, "adj6").elapsed_seconds
            assert 1.7 < now / prev < 2.3
            prev = now

    def test_trillion_scale_under_three_hours(self, cluster):
        """The title claim: a trillion edges (scale 36) within ~2 hours on
        10 PCs."""
        est = cluster.trilliong(36, "adj6")
        assert not est.oom
        assert est.elapsed_seconds < 3 * 3600

    def test_peak_memory_sublinear_and_small(self, cluster):
        """Paper Figure 12(b): peak memory grows sublinearly, ~1 GB at
        scale 38."""
        mems = [cluster.trilliong(s, "adj6").peak_memory_bytes
                for s in range(33, 39)]
        for a, b in zip(mems, mems[1:]):
            assert 1.0 < b / a < 2.0     # grows, but slower than |E| (2x)
        assert 0.5 * 2**30 < mems[-1] < 2 * 2**30

    def test_paper_memory_series_reproduced(self, cluster):
        """The published series: 122, 186, 283, 430, 653, 992 MB."""
        paper = [122, 186, 283, 430, 653, 992]
        for scale, expected_mb in zip(range(33, 39), paper):
            got_mb = cluster.trilliong(scale,
                                       "adj6").peak_memory_bytes / 2**20
            assert abs(got_mb - expected_mb) / expected_mb < 0.10


class TestFigure14Shape:
    def test_graph500_ooms_past_30(self):
        m = CostModel(PAPER_CLUSTER_IB)
        assert not m.graph500(29).oom
        assert m.graph500(30).oom

    def test_trilliong_1g_beats_graph500_ib(self):
        """TrillionG on the 100x slower network still wins."""
        tg = CostModel(PAPER_CLUSTER)
        g5 = CostModel(PAPER_CLUSTER_IB)
        for scale in range(25, 30):
            assert (tg.trilliong_nskg_csr(scale).elapsed_seconds
                    < g5.graph500(scale).elapsed_seconds)

    def test_graph500_network_sensitivity(self):
        """Graph500 is dominated by its construction exchange: 1GbE is
        far slower than InfiniBand; TrillionG is network-independent."""
        g5_1g = CostModel(PAPER_CLUSTER).graph500(28).elapsed_seconds
        g5_ib = CostModel(PAPER_CLUSTER_IB).graph500(28).elapsed_seconds
        assert g5_1g > 10 * g5_ib
        tg_1g = CostModel(PAPER_CLUSTER).trilliong_nskg_csr(28)
        tg_ib = CostModel(PAPER_CLUSTER_IB).trilliong_nskg_csr(28)
        assert math.isclose(tg_1g.elapsed_seconds, tg_ib.elapsed_seconds)

    def test_construction_ratios(self):
        """Figure 14(b): TrillionG ~6-7%; Graph500-1G >90%."""
        tg = CostModel(PAPER_CLUSTER).trilliong_nskg_csr(28)
        assert 0.04 < CostModel.construction_ratio(tg) < 0.10
        g5 = CostModel(PAPER_CLUSTER).graph500(28)
        assert CostModel.construction_ratio(g5) > 0.9

    def test_graph500_ib_construction_grows_with_pressure(self):
        m = CostModel(PAPER_CLUSTER_IB)
        r27 = CostModel.construction_ratio(m.graph500(27))
        r29 = CostModel.construction_ratio(m.graph500(29))
        assert r29 > r27


class TestSeries:
    def test_figure11a_series_rows(self):
        rows = figure11a_series(range(20, 23))
        assert len(rows) == 12
        assert {r.model for r in rows} == {
            "RMAT-mem", "RMAT-disk", "FastKronecker", "TrillionG/seq"}

    def test_figure11b_series_rows(self):
        rows = figure11b_series(range(24, 26))
        assert len(rows) == 8

    def test_figure12_series_rows(self):
        rows = figure12_series()
        assert [r.scale for r in rows] == list(range(33, 39))

    def test_figure14_series_rows(self):
        rows = figure14_series(range(25, 27))
        assert len(rows) == 8
        models = {r.model for r in rows}
        assert models == {"TrillionG-1G", "TrillionG-IB",
                          "Graph500-1G", "Graph500-IB"}

    def test_oom_cell_rendering(self):
        rows = figure11b_series(range(31, 32))
        mem_row = next(r for r in rows if r.model == "RMAT/p-mem")
        assert mem_row.cell() == "O.O.M"


class TestStorageCapacity:
    def test_scale38_fits_in_adj6_not_tsv(self, cluster):
        """Paper: 'we could generate up to Scale 38, which size is
        24.74 TB in the ADJ6 format' on the cluster's disks, while 'the
        TSV file is approximately 90 TB' — beyond them."""
        assert not cluster.trilliong(38, "adj6").oom
        assert cluster.trilliong(38, "tsv").oom

    def test_adj6_size_claim_ballpark(self, cluster):
        """Output bytes at scale 38 are tens of TB (paper: 24.74 TB; our
        per-edge constant includes record headers, landing at ~29 TB)."""
        total_bytes = cluster.num_edges(38) * 6.6
        assert 20e12 < total_bytes < 35e12

    def test_adj6_much_smaller_than_tsv(self):
        """'The file sizes in ADJ6 are usually 3-4 times smaller than
        those in TSV' — at trillion scale; our TSV constant models the
        scale-31 regime where ids are shorter (~2x)."""
        from repro.cluster.costmodel import BYTES_ADJ6, BYTES_TSV
        assert BYTES_TSV > 1.8 * BYTES_ADJ6


class TestCostModelBasics:
    def test_dmax_formula(self, cluster):
        # dmax = |E| * 0.76^scale for Graph500.
        assert math.isclose(cluster.dmax(20), 16 * 2**20 * 0.76**20)

    def test_num_edges(self, cluster):
        assert cluster.num_edges(10) == 16 * 1024

    def test_single_pc_has_one_thread(self):
        assert SINGLE_PC.total_threads == 1

    def test_network_swap(self):
        assert PAPER_CLUSTER_IB.network.name == "InfiniBand-EDR"
        assert PAPER_CLUSTER.machines == PAPER_CLUSTER_IB.machines
