"""Tests for the capacity planner — the paper's capacity story as
queryable facts."""

import pytest

from repro.cluster import (PAPER_CLUSTER, CostModel, capacity_report,
                           machines_needed, max_feasible_scale)


@pytest.fixture(scope="module")
def report():
    return capacity_report()


class TestMaxFeasibleScale:
    def test_paper_capacity_story(self, report):
        """The exact capacity ordering the evaluation reports: RMAT/p-mem
        tops out at 28, Graph500 at 29, TrillionG reaches 38 (the largest
        graph the paper generated)."""
        assert report.max_scales["RMAT/p-mem"] == 28
        assert report.max_scales["Graph500"] == 29
        assert report.max_scales["TrillionG (ADJ6)"] == 38

    def test_trilliong_wins(self, report):
        assert report.winner() == "TrillionG (ADJ6)"

    def test_adj6_reaches_further_than_tsv(self, report):
        """Disk capacity binds: the smaller format goes further."""
        assert (report.max_scales["TrillionG (ADJ6)"]
                > report.max_scales["TrillionG (TSV)"])

    def test_time_budget_shrinks_scales(self):
        unbounded = capacity_report()
        two_hours = capacity_report(time_budget_seconds=7200)
        for method, scale in two_hours.max_scales.items():
            assert scale is None or scale <= unbounded.max_scales[method]
        # Around two hours TrillionG sits near the paper's trillion-edge
        # scale-36 run (1.85 h); the model lands within one scale of it.
        assert two_hours.max_scales["TrillionG (ADJ6)"] in (35, 36)

    def test_unknown_method(self):
        with pytest.raises(KeyError):
            max_feasible_scale(CostModel(PAPER_CLUSTER), "magic")

    def test_infeasible_returns_none(self):
        model = CostModel(PAPER_CLUSTER)
        assert max_feasible_scale(model, "RMAT/p-mem",
                                  scale_range=range(40, 45)) is None


class TestMachinesNeeded:
    def test_base_cluster_sufficient_for_36(self):
        assert machines_needed(36) == 10   # the paper's cluster size

    def test_bigger_graph_needs_more_machines(self):
        n40 = machines_needed(40)
        assert n40 is not None and n40 > 10

    def test_time_budget_increases_machines(self):
        without = machines_needed(36)
        with_budget = machines_needed(36, time_budget_seconds=3600)
        assert with_budget >= without

    def test_impossible_returns_none(self):
        assert machines_needed(60, max_machines=16) is None
