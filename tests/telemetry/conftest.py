"""Telemetry tests mutate process-global state (the registry, the
tracer, the enable override); reset around every test."""

from __future__ import annotations

import pytest

from repro.telemetry import enable_telemetry, reset_telemetry


@pytest.fixture(autouse=True)
def clean_telemetry():
    enable_telemetry(True)
    reset_telemetry()
    yield
    reset_telemetry()
    enable_telemetry(None)
