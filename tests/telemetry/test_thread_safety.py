"""Instrument updates are lock-protected: the pipeline's background
writer thread and the producer share counters, so hammering the same
instruments from two threads must lose zero updates — exact totals,
not approximate ones.  Runs meaningfully under ``TRILLIONG_SANITIZE=1``
too (CI runs the whole suite both ways): the sanitizer's own ledger is
exercised from both threads at the same time."""

from __future__ import annotations

import threading

from repro.sanitize import enable_sanitize, reset_sanitizer
from repro.telemetry import registry

ITERATIONS = 2_000


def hammer(barrier):
    reg = registry()
    counter = reg.counter("test.shared_counter")
    gauge = reg.gauge("test.shared_peak", mode="max")
    hist = reg.histogram("test.shared_hist", bounds=(1.0, 10.0, 100.0))
    barrier.wait()
    for i in range(ITERATIONS):
        counter.inc()
        gauge.set(float(i))
        hist.observe(float(i % 150))


def test_concurrent_updates_lose_nothing():
    barrier = threading.Barrier(2)
    worker = threading.Thread(target=hammer, args=(barrier,),
                              name="test-hammer")
    worker.start()
    hammer(barrier)
    worker.join()
    snap = registry().snapshot()
    assert snap["test.shared_counter"]["value"] == 2 * ITERATIONS
    assert snap["test.shared_peak"]["value"] == float(ITERATIONS - 1)
    hist = snap["test.shared_hist"]
    assert hist["count"] == 2 * ITERATIONS
    assert sum(hist["counts"]) == 2 * ITERATIONS


def test_concurrent_merge_and_updates():
    # A worker folding its snapshot in (the distributed-run path) races
    # the producer's live increments; the folded total must be exact.
    reg = registry()
    counter = reg.counter("test.merged")
    worker_snapshot = {"test.merged": {"type": "counter", "value": 1.0}}
    merges = 500

    def merge_loop():
        for _ in range(merges):
            reg.merge(worker_snapshot)

    worker = threading.Thread(target=merge_loop, name="test-merger")
    worker.start()
    for _ in range(ITERATIONS):
        counter.inc()
    worker.join()
    assert counter.value == ITERATIONS + merges


def test_exact_totals_with_sanitizer_enabled():
    enable_sanitize(True)
    reset_sanitizer()
    try:
        test_concurrent_updates_lose_nothing()
    finally:
        enable_sanitize(None)
        reset_sanitizer()
