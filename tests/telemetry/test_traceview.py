"""Chrome Trace Event export: synthetic-proportional layout, per-worker
tracks, flight counter series, and atomic file writes."""

from __future__ import annotations

import json

from repro.telemetry import build_report, span
from repro.telemetry.traceview import (SUPERVISOR_TID, WORKER_TID_BASE,
                                       build_trace, write_trace)


def _events(doc, ph=None, tid=None):
    out = doc["traceEvents"]
    if ph is not None:
        out = [e for e in out if e["ph"] == ph]
    if tid is not None:
        out = [e for e in out if e["tid"] == tid]
    return out


def _span_tree(name, seconds, children=()):
    return {"name": name, "count": 1, "total_seconds": seconds,
            "exclusive_seconds": seconds, "children": list(children)}


def test_supervisor_track_lays_spans_proportionally():
    report = {"spans": [
        _span_tree("generate", 2.0,
                   [_span_tree("a", 0.5), _span_tree("b", 1.0)]),
        _span_tree("merge", 1.0),
    ]}
    doc = build_trace(report, label="run")
    metas = {e["name"]: e for e in _events(doc, ph="M")}
    assert metas["process_name"]["args"]["name"] == "run"
    assert metas["thread_name"]["args"]["name"] == "supervisor"
    spans = {e["name"]: e for e in _events(doc, ph="X",
                                           tid=SUPERVISOR_TID)}
    generate, a, b = spans["generate"], spans["a"], spans["b"]
    assert generate["ts"] == 0 and generate["dur"] == 2_000_000
    # Children sit sequentially inside the parent.
    assert a["ts"] == 0 and a["dur"] == 500_000
    assert b["ts"] == 500_000 and b["dur"] == 1_000_000
    # Roots sit sequentially after one another.
    assert spans["merge"]["ts"] == 2_000_000
    assert generate["args"]["count"] == 1


def test_parent_widened_to_contain_children():
    report = {"spans": [_span_tree("outer", 0.1,
                                   [_span_tree("inner", 5.0)])]}
    doc = build_trace(report)
    spans = {e["name"]: e for e in _events(doc, ph="X")}
    assert spans["outer"]["dur"] >= spans["inner"]["dur"]


def test_worker_reports_get_distinct_tracks_and_retry_bump():
    workers = [
        {"task_index": 0, "attempt": 1,
         "spans": [_span_tree("worker.generate", 1.0)]},
        {"task_index": 1, "attempt": 1,
         "spans": [_span_tree("worker.generate", 1.5)]},
        {"task_index": 0, "attempt": 2,
         "spans": [_span_tree("worker.generate", 0.5)]},
    ]
    doc = build_trace(worker_reports=workers)
    names = {e["tid"]: e["args"]["name"]
             for e in _events(doc, ph="M") if e["name"] == "thread_name"}
    worker_names = [v for v in names.values() if v.startswith("worker")]
    assert sorted(worker_names) == ["worker 0", "worker 0 (attempt 2)",
                                    "worker 1"]
    assert names[WORKER_TID_BASE] == "worker 0"
    assert names[WORKER_TID_BASE + 1] == "worker 1"
    # The retry collided with tid 101 and was bumped to a fresh track.
    tids = {tid for tid, v in names.items() if v.startswith("worker")}
    assert len(tids) == 3
    for tid in tids:
        assert len(_events(doc, ph="X", tid=tid)) == 1


def test_flight_samples_become_counter_events():
    flight = {"samples": [
        {"elapsed": 0.5, "rss_bytes": 1000,
         "metrics": {"generator.edges": 10.0}},
        {"elapsed": 1.0, "rss_bytes": 2000, "io_write_bytes": 4096,
         "metrics": {"generator.edges": 20.0}},
    ]}
    doc = build_trace(flight=flight)
    counters = _events(doc, ph="C")
    by_name: dict = {}
    for event in counters:
        by_name.setdefault(event["name"], []).append(event)
    assert [e["ts"] for e in by_name["vitals.rss_bytes"]] == \
        [500_000, 1_000_000]
    assert by_name["vitals.io_write_bytes"][0]["args"] == \
        {"io_write_bytes": 4096}
    assert [e["args"]["value"] for e in by_name["generator.edges"]] == \
        [10.0, 20.0]
    names = {e["args"]["name"] for e in _events(doc, ph="M")}
    assert "flight counters" in names


def test_report_embedded_flight_and_workers_are_fallbacks():
    report = {
        "spans": [_span_tree("generate", 1.0)],
        "flight": {"samples": [{"elapsed": 0.1, "metrics": {"m": 1.0}}]},
        "worker_reports": [{"task_index": 0,
                            "spans": [_span_tree("worker.generate", 1.0)]}],
    }
    doc = build_trace(report)
    assert _events(doc, ph="C")
    assert _events(doc, ph="X", tid=WORKER_TID_BASE)
    # Explicit arguments win over the embedded fallbacks.
    override = build_trace(report, flight={"samples": []},
                           worker_reports=[{"task_index": 3, "spans": []}])
    assert _events(override, ph="C") == []
    assert _events(override, ph="X", tid=WORKER_TID_BASE) == []


def test_build_trace_from_live_report():
    with span("generate", scale=8):
        with span("format.write_blocks"):
            pass
    doc = build_trace(build_report())
    spans = {e["name"] for e in _events(doc, ph="X")}
    assert {"generate", "format.write_blocks"} <= spans
    generate = next(e for e in _events(doc, ph="X")
                    if e["name"] == "generate")
    assert generate["args"]["attrs"] == {"scale": "8"}
    assert doc["otherData"]["layout"] == "synthetic-proportional"


def test_write_trace_is_atomic_valid_json(tmp_path):
    path = tmp_path / "trace.json"
    report = {"spans": [_span_tree("generate", 1.0)]}
    out = write_trace(path, report)
    assert out == path
    doc = json.loads(path.read_text())
    assert doc["traceEvents"]
    assert list(tmp_path.glob("*.partial.*")) == []
    # Overwrite in place keeps the file coherent.
    write_trace(path, {"spans": [_span_tree("merge", 2.0)]})
    names = {e.get("name") for e in json.loads(path.read_text())
             ["traceEvents"]}
    assert "merge" in names and "generate" not in names
