"""Introspection HTTP server: endpoint payloads, read-only semantics,
and live observation of a real in-progress generation."""

from __future__ import annotations

import json
from urllib.error import HTTPError
from urllib.request import urlopen

import pytest

from repro.system import TrillionG
from repro.telemetry import global_registry, span
from repro.telemetry.flight import start_flight, stop_flight
from repro.telemetry.server import (SERVE_ENV, TelemetryServer,
                                    progress_payload, serve_port_from_env,
                                    start_server)


def _get(url):
    with urlopen(url, timeout=5) as response:
        return (response.status,
                response.headers.get("Content-Type", ""),
                response.read().decode("utf-8"))


def _get_json(url):
    status, _, body = _get(url)
    assert status == 200
    return json.loads(body)


@pytest.mark.parametrize("raw,expected", [
    ("", None), ("off", None), ("false", None), ("none", None),
    ("0", 0), ("8080", 8080), ("junk", None),
])
def test_serve_port_from_env(monkeypatch, raw, expected):
    monkeypatch.setenv(SERVE_ENV, raw)
    assert serve_port_from_env() == expected


def test_progress_payload_reads_registry_and_spans():
    global_registry().counter("generator.edges").inc(500)
    with span("generate"):
        payload = progress_payload(total_edges=1000,
                                   started_monotonic=None)
        assert payload["edges_done"] == 500
        assert payload["total_edges"] == 1000
        assert payload["percent"] == 50.0
        assert payload["phase"] == "generate"
        assert "generate" in payload["active_spans"].popitem()[1]
    # Without a total or a start time the payload stays minimal.
    assert progress_payload() == {"edges_done": 500}


def test_progress_payload_rate_and_eta(monkeypatch):
    import time
    global_registry().counter("generator.edges").inc(100)
    payload = progress_payload(total_edges=300,
                               started_monotonic=time.monotonic() - 2.0)
    assert payload["elapsed_seconds"] >= 2.0
    assert payload["edges_per_second"] == pytest.approx(50.0, rel=0.1)
    assert payload["eta_seconds"] == pytest.approx(4.0, rel=0.1)


def test_endpoints_serve_current_state():
    global_registry().counter("generator.edges").inc(42)
    with TelemetryServer(0, total_edges=100) as server:
        assert server.port > 0
        health = _get_json(f"{server.url}/healthz")
        assert health["status"] == "ok"
        assert health["uptime_seconds"] >= 0.0
        status, ctype, metrics = _get(f"{server.url}/metrics")
        assert status == 200 and ctype.startswith("text/plain")
        assert "trilliong_generator_edges 42" in metrics
        with span("generate"):
            progress = _get_json(f"{server.url}/progress")
            spans = _get_json(f"{server.url}/spans")
        assert progress["edges_done"] == 42
        assert progress["percent"] == 42.0
        assert progress["phase"] == "generate"
        assert any("generate" in stack
                   for stack in spans["active"].values())
        # The span finished above; now it shows up as a finished tree.
        spans_after = _get_json(f"{server.url}/spans")
        assert [n["name"] for n in spans_after["spans"]] == ["generate"]
        assert spans_after["active"] == {}


def test_unknown_route_and_missing_recorder_404():
    with TelemetryServer(0) as server:
        for route in ("/nope", "/flight"):
            with pytest.raises(HTTPError) as info:
                urlopen(f"{server.url}{route}", timeout=5)
            assert info.value.code == 404


def test_flight_endpoint_serves_recorder_tail():
    recorder = start_flight(60.0)
    try:
        recorder.sample()
        recorder.sample()
        with TelemetryServer(0) as server:
            doc = _get_json(f"{server.url}/flight")
            assert len(doc["samples"]) == 2
            limited = _get_json(f"{server.url}/flight?limit=1")
            assert len(limited["samples"]) == 1
            assert limited["dropped"] == 1
    finally:
        stop_flight()


def test_start_server_defers_to_env(monkeypatch):
    monkeypatch.delenv(SERVE_ENV, raising=False)
    assert start_server() is None
    monkeypatch.setenv(SERVE_ENV, "0")
    server = start_server(total_edges=10)
    try:
        assert server is not None
        assert _get_json(f"{server.url}/healthz")["status"] == "ok"
    finally:
        server.stop()


def test_serving_is_read_only():
    """Probing every endpoint must not create instruments or spans."""
    before = dict(global_registry().snapshot())
    with TelemetryServer(0, total_edges=10) as server:
        _get(f"{server.url}/metrics")
        _get_json(f"{server.url}/progress")
        _get_json(f"{server.url}/spans")
    assert global_registry().snapshot() == before


def test_live_introspection_mid_generation(tmp_path):
    """Deterministic live observation: a progress hook fires between
    blocks of a real sequential run and polls the server — the payloads
    must show the run part-way through, inside its ``generate`` span."""
    tg = TrillionG(scale=12, edge_factor=16, seed=7, block_size=256)
    polled: dict = {}

    with TelemetryServer(0, total_edges=tg.num_edges) as server:
        def probe(edges_done: int) -> None:
            if not polled and edges_done < tg.num_edges:
                polled["progress"] = _get_json(f"{server.url}/progress")
                polled["metrics"] = _get(f"{server.url}/metrics")[2]

        result = tg.generate_to(tmp_path / "g.adj6", fmt="adj6",
                                progress=probe)

    progress = polled["progress"]
    assert 0 < progress["edges_done"] < result.num_edges
    assert 0 < progress["percent"] < 100.0
    # The deepest live frame is the phase: mid-write that is the format
    # span, nested inside the run's ``generate`` root.
    assert progress["phase"] == "format.write_blocks"
    assert any(stack[0] == "generate"
               for stack in progress["active_spans"].values())
    assert "trilliong_generator_edges" in polled["metrics"]


def test_system_serve_telemetry_wiring(tmp_path, caplog):
    """``TrillionG(serve_telemetry=0)`` runs the server for exactly the
    duration of ``generate_to``: reachable mid-run, gone after."""
    import logging
    caplog.set_level(logging.INFO, logger="repro.telemetry.server")
    tg = TrillionG(scale=11, edge_factor=8, seed=3, block_size=512,
                   serve_telemetry=0)
    seen: dict = {}

    def probe(edges_done: int) -> None:
        if seen:
            return
        (record,) = [r for r in caplog.records
                     if "listening" in r.getMessage()]
        url = record.getMessage().rsplit(" ", 1)[-1]
        seen["url"] = url
        seen["health"] = _get_json(f"{url}/healthz")

    tg.generate_to(tmp_path / "g.adj6", fmt="adj6", progress=probe)
    assert seen["health"]["status"] == "ok"
    with pytest.raises(OSError):
        urlopen(f"{seen['url']}/healthz", timeout=1)
