"""Span-tree semantics: nesting, exclusive-time math, aggregation on
re-entry, disabled-mode measurement, and the merge/attach algebra."""

from __future__ import annotations

import threading
import time

from repro.telemetry import (SpanNode, Stopwatch, enable_telemetry,
                             merge_span_trees, span, tracer)


def _root(name):
    node = tracer().roots.get(name)
    assert node is not None, (name, sorted(tracer().roots))
    return node


def test_stopwatch_accumulates_and_is_idempotent():
    watch = Stopwatch()
    assert watch.seconds == 0.0
    with watch:
        time.sleep(0.01)
    first = watch.seconds
    assert first > 0.0
    assert watch.stop() == first         # stop while stopped: no-op
    with watch:
        time.sleep(0.01)
    assert watch.seconds > first         # second interval adds on


def test_span_nesting_builds_a_tree():
    with span("outer", workers=2):
        with span("inner"):
            pass
        with span("inner"):
            pass
    outer = _root("outer")
    assert outer.count == 1
    assert outer.attrs == {"workers": 2}
    inner = outer.find("inner")
    assert inner is not None and inner.count == 2
    assert "inner" not in tracer().roots     # nested, not a root


def test_exclusive_time_subtracts_child_wall_time():
    with span("outer") as outer_span:
        time.sleep(0.02)
        with span("inner") as inner_span:
            time.sleep(0.02)
    outer = _root("outer")
    assert outer_span.seconds >= inner_span.seconds
    assert abs(outer.total_seconds - outer_span.seconds) < 1e-9
    expected_exclusive = outer_span.seconds - inner_span.seconds
    assert abs(outer.exclusive_seconds - expected_exclusive) < 1e-9
    inner = outer.find("inner")
    assert abs(inner.exclusive_seconds - inner.total_seconds) < 1e-9


def test_reentry_aggregates_into_one_node():
    for _ in range(5):
        with span("phase"):
            pass
    node = _root("phase")
    assert node.count == 5
    assert len(tracer().roots) == 1


def test_out_of_order_exit_does_not_corrupt_peers():
    # Interleaved lifetimes, as with pipelined writers: a enters, b
    # enters, a exits before b.
    a = span("a").__enter__()
    b = span("b").__enter__()
    a._tracer._exit(a._frame)
    b._tracer._exit(b._frame)
    assert _root("a").count == 1
    # b was entered while a was active, so it is a's child.
    assert _root("a").find("b").count == 1


def test_disabled_spans_measure_but_do_not_record():
    enable_telemetry(False)
    with span("ghost") as sp:
        time.sleep(0.01)
    assert sp.seconds >= 0.01            # timing fields stay populated
    enable_telemetry(True)
    assert tracer().roots == {}          # nothing landed in the tree


def test_merge_span_trees_is_associative():
    def snap(count, seconds):
        node = SpanNode("worker.generate")
        node.count = count
        node.total_seconds = seconds
        node.exclusive_seconds = seconds
        child = node.child("format.write_blocks")
        child.count = count
        child.total_seconds = seconds / 2
        return [node.to_dict()]

    s1, s2, s3 = snap(1, 1.0), snap(2, 3.0), snap(4, 0.5)
    left = merge_span_trees(merge_span_trees(s1, s2), s3)
    right = merge_span_trees(s1, merge_span_trees(s2, s3))
    assert left == right
    (root,) = left
    assert root["count"] == 7
    assert abs(root["total_seconds"] - 4.5) < 1e-12
    assert root["children"][0]["count"] == 7


def test_merge_span_trees_deep_and_unbalanced():
    """One report carries a deep chain, the other stops early and has an
    extra sibling subtree: the merge keeps every branch, aligned by
    name, with per-node sums."""
    def chain(depth, seconds):
        root = node = SpanNode("level0")
        node.count = 1
        node.total_seconds = seconds
        for i in range(1, depth):
            node = node.child(f"level{i}")
            node.count = 1
            node.total_seconds = seconds / (i + 1)
        return root

    deep = chain(6, 6.0).to_dict()
    shallow_root = chain(2, 2.0)
    extra = shallow_root.child("sidecar")
    extra.count = 3
    shallow = shallow_root.to_dict()

    (merged,) = merge_span_trees([deep], [shallow])
    node, depth = merged, 0
    while node["children"]:
        named = {c["name"]: c for c in node["children"]}
        if depth == 0:
            assert set(named) == {"level1", "sidecar"}
            assert named["sidecar"]["count"] == 3
        node = named[f"level{depth + 1}"]
        depth += 1
    assert depth == 5                        # the deep chain survived
    assert merged["count"] == 2
    assert abs(merged["total_seconds"] - 8.0) < 1e-12


def test_merge_span_trees_ignores_sibling_order():
    def tree(order):
        root = SpanNode("root")
        root.count = 1
        for name in order:
            child = root.child(name)
            child.count = 1
        return [root.to_dict()]

    forward = merge_span_trees(tree(["a", "b", "c"]),
                               tree(["c", "b", "a"]))
    (root,) = forward
    counts = {c["name"]: c["count"] for c in root["children"]}
    assert counts == {"a": 2, "b": 2, "c": 2}


def test_active_stacks_reports_live_frames_per_thread():
    assert tracer().active_stacks() == {}
    with span("generate"):
        with span("format.write_blocks"):
            stacks = tracer().active_stacks()
            (stack,) = stacks.values()
            assert stack == ["generate", "format.write_blocks"]
            name = next(iter(stacks))
            assert name == threading.current_thread().name
        (stack,) = tracer().active_stacks().values()
        assert stack == ["generate"]
    assert tracer().active_stacks() == {}


def test_active_stacks_sees_other_threads():
    entered = threading.Event()
    release = threading.Event()

    def work():
        with span("worker.generate"):
            entered.set()
            release.wait(5)

    thread = threading.Thread(target=work, name="bg-worker")
    thread.start()
    try:
        assert entered.wait(5)
        assert tracer().active_stacks()["bg-worker"] == \
            ["worker.generate"]
    finally:
        release.set()
        thread.join()
    assert "bg-worker" not in tracer().active_stacks()


def test_active_stacks_prunes_dead_threads():
    """A thread that dies mid-span (crash, abandoned frame) must not
    haunt the active view forever."""
    def abandon():
        span("ghost").__enter__()            # never exited

    thread = threading.Thread(target=abandon, name="dying")
    thread.start()
    thread.join()
    # The dead thread's ident is no longer live, so its stale frame is
    # dropped rather than reported.
    assert "dying" not in tracer().active_stacks()


def test_attach_grafts_under_current_span_without_exclusive_charge():
    worker = SpanNode("worker.generate")
    worker.count = 1
    worker.total_seconds = 100.0
    worker.exclusive_seconds = 100.0
    with span("sched.run_tasks") as sched:
        tracer().attach([worker.to_dict()])
    node = _root("sched.run_tasks")
    grafted = node.find("worker.generate")
    assert grafted is not None and grafted.total_seconds == 100.0
    # The worker's 100s ran in another process: the parent's exclusive
    # time must not go negative because of the graft.
    assert node.exclusive_seconds >= 0.0
    assert abs(node.exclusive_seconds - sched.seconds) < 1e-9


def test_attach_merges_into_existing_child():
    first = SpanNode("w")
    first.count = 1
    second = SpanNode("w")
    second.count = 2
    with span("parent"):
        tracer().attach([first.to_dict()])
        tracer().attach([second.to_dict()])
    assert _root("parent").find("w").count == 3
