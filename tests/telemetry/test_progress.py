"""ProgressReporter rendering modes and throttling edges: TTY vs
newline mode, the non-TTY interval floor, zero-edge totals, and a
monotonic clock that goes backwards."""

from __future__ import annotations

import io

import repro.telemetry.progress as progress_module
from repro.telemetry.progress import (NON_TTY_MIN_INTERVAL,
                                      ProgressReporter)


class FakeClock:
    """Stands in for the ``time`` module inside ``progress``."""

    def __init__(self, now: float = 1000.0) -> None:
        self.now = now

    def monotonic(self) -> float:
        return self.now


class TtyStream(io.StringIO):
    def isatty(self) -> bool:
        return True


def _reporter(monkeypatch, clock, **kwargs):
    monkeypatch.setattr(progress_module, "time", clock)
    stream = kwargs.pop("stream", io.StringIO())
    return ProgressReporter(stream=stream, **kwargs), stream


def test_tty_mode_redraws_one_line(monkeypatch):
    clock = FakeClock()
    reporter, stream = _reporter(monkeypatch, clock, total_edges=100,
                                 stream=TtyStream(), min_interval=0.0)
    reporter(50)
    reporter.finish()
    text = stream.getvalue()
    assert text.count("\r") == 2         # one per draw, no newlines inside
    assert text.endswith("\n")           # finish terminates the line
    assert "50.0%" in text


def test_non_tty_mode_emits_newline_lines(monkeypatch):
    clock = FakeClock()
    reporter, stream = _reporter(monkeypatch, clock, total_edges=100)
    reporter(25)
    clock.now += NON_TTY_MIN_INTERVAL + 0.1
    reporter(75)
    reporter.finish()
    lines = stream.getvalue().splitlines()
    assert len(lines) == 3               # two updates + the final draw
    assert "\r" not in stream.getvalue()
    assert "25.0%" in lines[0] and "75.0%" in lines[1]
    assert "75.0%" in lines[2]


def test_non_tty_floors_the_redraw_interval(monkeypatch):
    clock = FakeClock()
    reporter, stream = _reporter(monkeypatch, clock, min_interval=0.0)
    reporter(1)
    clock.now += 0.5                     # plenty for a TTY, not for logs
    reporter(2)
    assert len(stream.getvalue().splitlines()) == 1
    clock.now += NON_TTY_MIN_INTERVAL
    reporter(3)
    assert len(stream.getvalue().splitlines()) == 2


def test_tty_autodetection(monkeypatch):
    monkeypatch.setattr(progress_module, "time", FakeClock())
    assert ProgressReporter(stream=TtyStream())._tty is True
    assert ProgressReporter(stream=io.StringIO())._tty is False

    class Broken(io.StringIO):
        def isatty(self):
            raise ValueError("detached")

    assert ProgressReporter(stream=Broken())._tty is False
    # Explicit override beats detection.
    assert ProgressReporter(stream=TtyStream(), tty=False)._tty is False


def test_zero_edge_total_draws_without_percent(monkeypatch):
    clock = FakeClock()
    reporter, stream = _reporter(monkeypatch, clock, total_edges=0)
    reporter(0)
    reporter.finish()
    text = stream.getvalue()
    assert "%" not in text               # zero total: no percent math
    assert "0 edges" in text


def test_zero_elapsed_rate_is_finite(monkeypatch):
    clock = FakeClock()
    reporter, stream = _reporter(monkeypatch, clock, total_edges=10)
    reporter(5)                          # drawn at elapsed == 0 exactly
    assert "edges/s" in stream.getvalue()


def test_clock_backwards_rearms_throttle(monkeypatch):
    clock = FakeClock(now=1000.0)
    reporter, stream = _reporter(monkeypatch, clock)
    reporter(1)                          # draws; _last_draw = 1000
    clock.now = 500.0                    # suspend/resume jumped backwards
    reporter(2)                          # re-arms instead of going mute
    clock.now = 500.0 + NON_TTY_MIN_INTERVAL + 0.1
    reporter(3)
    lines = stream.getvalue().splitlines()
    assert len(lines) == 2               # would be 1 until now==1002 if muted
    assert "3 edges" in lines[-1]


def test_update_after_finish_is_inert(monkeypatch):
    clock = FakeClock()
    reporter, stream = _reporter(monkeypatch, clock)
    reporter(10)
    reporter.finish()
    before = stream.getvalue()
    clock.now += 100.0
    reporter(999)
    reporter.finish()
    assert stream.getvalue() == before


def test_finish_without_tty_draw_adds_no_stray_newline(monkeypatch):
    clock = FakeClock()
    reporter, stream = _reporter(monkeypatch, clock, stream=TtyStream(),
                                 min_interval=0.0)
    reporter.finish()
    # One \r-draw from finish itself, then the line terminator.
    assert stream.getvalue().count("\n") == 1
