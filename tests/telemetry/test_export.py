"""Exporter coverage: JSON reports, Prometheus rendering, the logger
hierarchy, and the progress line."""

from __future__ import annotations

import io
import json
import logging

from repro.telemetry import (ProgressReporter, build_report, get_logger,
                             global_registry, log_report, merge_reports,
                             span, to_prometheus, write_json_report)
from repro.telemetry.progress import QUEUE_GAUGE, human_count


def _populate():
    reg = global_registry()
    reg.counter("generator.edges").inc(1024)
    reg.gauge("pipeline.queue_high_water", mode="max").set(3)
    reg.histogram("generator.scope_size", bounds=(1.0, 2.0)).observe(2.0)
    with span("generate", scale=8):
        with span("format.write_blocks"):
            pass


def test_build_report_shape_and_json_roundtrip(tmp_path):
    _populate()
    report = build_report(extra={"scale": 8})
    assert report["scale"] == 8
    assert report["metrics"]["generator.edges"]["value"] == 1024.0
    (root,) = report["spans"]
    assert root["name"] == "generate"
    assert root["children"][0]["name"] == "format.write_blocks"
    path = write_json_report(tmp_path / "run.json", report)
    assert json.loads(path.read_text()) == json.loads(
        json.dumps(report))          # fully JSON-able, no lossy types


def test_merge_reports_combines_both_halves():
    _populate()
    report = build_report()
    merged = merge_reports(report, report)
    assert merged["metrics"]["generator.edges"]["value"] == 2048.0
    (root,) = merged["spans"]
    assert root["count"] == 2


def test_prometheus_rendering():
    _populate()
    text = to_prometheus()
    assert "# TYPE trilliong_generator_edges counter" in text
    assert "trilliong_generator_edges 1024" in text
    assert "trilliong_pipeline_queue_high_water 3" in text
    # Histogram buckets are cumulative and end with +Inf.
    assert 'trilliong_generator_scope_size_bucket{le="1"} 0' in text
    assert 'trilliong_generator_scope_size_bucket{le="2"} 1' in text
    assert 'trilliong_generator_scope_size_bucket{le="+Inf"} 1' in text
    assert "trilliong_generator_scope_size_count 1" in text


def test_get_logger_hierarchy():
    assert get_logger().name == "repro"
    assert get_logger("dist.faults").name == "repro.dist.faults"
    assert get_logger("repro.formats").name == "repro.formats"


def test_log_report_emits_one_line_per_item():
    _populate()
    logger = logging.getLogger("repro.test_log_report")
    logger.propagate = False
    logger.setLevel(logging.INFO)
    stream = io.StringIO()
    handler = logging.StreamHandler(stream)
    logger.addHandler(handler)
    try:
        log_report(logger=logger)
    finally:
        logger.removeHandler(handler)
    lines = stream.getvalue().splitlines()
    assert any("metric generator.edges: 1024" in ln for ln in lines)
    assert any("span generate" in ln for ln in lines)
    assert any("span   format.write_blocks" in ln for ln in lines)


def test_human_count():
    assert human_count(950) == "950"
    assert human_count(2_500) == "2.50k"
    assert human_count(3_000_000) == "3.00M"
    assert human_count(4_200_000_000) == "4.20G"
    assert human_count(1_100_000_000_000) == "1.10T"


def test_progress_reporter_renders_rate_and_queue():
    global_registry().gauge(QUEUE_GAUGE, mode="max").set(5)
    stream = io.StringIO()
    reporter = ProgressReporter(total_edges=1000, stream=stream,
                                min_interval=0.0)
    reporter(250)
    reporter(1000)
    reporter.finish()
    text = stream.getvalue()
    assert "25.0%" in text
    assert "100.0%" in text
    assert "queue<=5" in text
    assert text.endswith("\n")           # finish() terminates the line
