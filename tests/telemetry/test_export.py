"""Exporter coverage: JSON reports, Prometheus rendering, the logger
hierarchy, and the progress line."""

from __future__ import annotations

import io
import json
import logging
import re

import pytest

from repro.telemetry import (SCHEMA_VERSION, ProgressReporter,
                             build_report, escape_label_value, get_logger,
                             global_registry, log_report, merge_reports,
                             span, to_prometheus, write_json_report)
from repro.telemetry.progress import QUEUE_GAUGE, human_count


def _populate():
    reg = global_registry()
    reg.counter("generator.edges").inc(1024)
    reg.gauge("pipeline.queue_high_water", mode="max").set(3)
    reg.histogram("generator.scope_size", bounds=(1.0, 2.0)).observe(2.0)
    with span("generate", scale=8):
        with span("format.write_blocks"):
            pass


def test_build_report_shape_and_json_roundtrip(tmp_path):
    _populate()
    report = build_report(extra={"scale": 8})
    assert report["scale"] == 8
    assert report["metrics"]["generator.edges"]["value"] == 1024.0
    (root,) = report["spans"]
    assert root["name"] == "generate"
    assert root["children"][0]["name"] == "format.write_blocks"
    path = write_json_report(tmp_path / "run.json", report)
    assert json.loads(path.read_text()) == json.loads(
        json.dumps(report))          # fully JSON-able, no lossy types


def test_merge_reports_combines_both_halves():
    _populate()
    report = build_report()
    merged = merge_reports(report, report)
    assert merged["metrics"]["generator.edges"]["value"] == 2048.0
    (root,) = merged["spans"]
    assert root["count"] == 2


def test_prometheus_rendering():
    _populate()
    text = to_prometheus()
    assert "# TYPE trilliong_generator_edges counter" in text
    assert "trilliong_generator_edges 1024" in text
    assert "trilliong_pipeline_queue_high_water 3" in text
    # Histogram buckets are cumulative and end with +Inf.
    assert 'trilliong_generator_scope_size_bucket{le="1"} 0' in text
    assert 'trilliong_generator_scope_size_bucket{le="2"} 1' in text
    assert 'trilliong_generator_scope_size_bucket{le="+Inf"} 1' in text
    assert "trilliong_generator_scope_size_count 1" in text


#: Legal exposition-format sample line: ``name{labels} value`` with the
#: metric name drawn from ``[a-zA-Z_:][a-zA-Z0-9_:]*``.
_SAMPLE = re.compile(
    r'^[a-zA-Z_:][a-zA-Z0-9_:]*(\{le="[^"]+"\})? -?[0-9].*$')


def test_prometheus_names_stay_legal_for_hostile_inputs():
    reg = global_registry()
    # Real metric families under names the sanitizer must rewrite.
    reg.counter("gen.alias.build++").inc(2)
    reg.counter("a..b").inc(1)
    reg.gauge("weird-name!.depth").set(4)
    reg.histogram("päth.größe", bounds=(1.0,)).observe(0.5)
    text = to_prometheus()
    for line in text.splitlines():
        if line.startswith("#"):
            assert re.match(r"^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* "
                            r"(counter|gauge|histogram)$", line), line
        else:
            assert _SAMPLE.match(line), line
    # Runs of illegal characters collapse to one underscore each.
    assert "trilliong_gen_alias_build_ 2" in text
    assert "trilliong_a_b 1" in text
    assert "trilliong_weird_name_depth 4" in text
    assert "trilliong_p_th_gr_e_count 1" in text


def test_prometheus_round_trips_every_real_family():
    """Render the full populated registry and parse it back: every
    non-comment line must be a legal sample, and every registered
    metric must surface at least one sample."""
    _populate()
    snapshot = global_registry().snapshot()
    text = to_prometheus(snapshot)
    parsed: dict[str, float] = {}
    for line in text.splitlines():
        if line.startswith("#"):
            continue
        assert _SAMPLE.match(line), line
        name = line.split("{")[0].split(" ")[0]
        parsed[name] = float(line.rsplit(" ", 1)[1])
    assert parsed["trilliong_generator_edges"] == 1024.0
    assert parsed["trilliong_pipeline_queue_high_water"] == 3.0
    assert parsed["trilliong_generator_scope_size_count"] == 1.0
    # Exactly one TYPE header per family, each before its samples.
    assert text.count("# TYPE") == len(snapshot)


def test_escape_label_value():
    assert escape_label_value('a"b') == 'a\\"b'
    assert escape_label_value("a\\b") == "a\\\\b"
    assert escape_label_value("a\nb") == "a\\nb"
    assert escape_label_value("plain") == "plain"


def test_build_report_stamps_schema_version():
    assert build_report()["schema_version"] == SCHEMA_VERSION


def test_write_json_report_stamps_and_is_atomic(tmp_path):
    path = write_json_report(tmp_path / "run.json",
                             {"metrics": {}, "spans": []})
    doc = json.loads(path.read_text())
    assert doc["schema_version"] == SCHEMA_VERSION
    assert list(tmp_path.glob("*.partial.*")) == []
    # Overwrite replaces the whole document atomically.
    write_json_report(path, {"metrics": {}, "spans": [], "marker": 1})
    assert json.loads(path.read_text())["marker"] == 1
    assert list(tmp_path.glob("*.partial.*")) == []


def test_merge_reports_refuses_version_mismatch():
    _populate()
    current = build_report()
    legacy = {k: v for k, v in current.items() if k != "schema_version"}
    merged = merge_reports(current, legacy)    # missing stamp: version 1
    assert merged["schema_version"] == SCHEMA_VERSION
    future = dict(current, schema_version=SCHEMA_VERSION + 1)
    with pytest.raises(ValueError, match="schema_version=2"):
        merge_reports(current, future)
    with pytest.raises(ValueError, match="unintelligible"):
        merge_reports(dict(current, schema_version="not-a-number"))


def test_get_logger_hierarchy():
    assert get_logger().name == "repro"
    assert get_logger("dist.faults").name == "repro.dist.faults"
    assert get_logger("repro.formats").name == "repro.formats"


def test_log_report_emits_one_line_per_item():
    _populate()
    logger = logging.getLogger("repro.test_log_report")
    logger.propagate = False
    logger.setLevel(logging.INFO)
    stream = io.StringIO()
    handler = logging.StreamHandler(stream)
    logger.addHandler(handler)
    try:
        log_report(logger=logger)
    finally:
        logger.removeHandler(handler)
    lines = stream.getvalue().splitlines()
    assert any("metric generator.edges: 1024" in ln for ln in lines)
    assert any("span generate" in ln for ln in lines)
    assert any("span   format.write_blocks" in ln for ln in lines)


def test_human_count():
    assert human_count(950) == "950"
    assert human_count(2_500) == "2.50k"
    assert human_count(3_000_000) == "3.00M"
    assert human_count(4_200_000_000) == "4.20G"
    assert human_count(1_100_000_000_000) == "1.10T"


def test_progress_reporter_renders_rate_and_queue():
    global_registry().gauge(QUEUE_GAUGE, mode="max").set(5)
    stream = io.StringIO()
    reporter = ProgressReporter(total_edges=1000, stream=stream,
                                min_interval=0.0)
    reporter(250)
    reporter(1000)
    reporter.finish()
    text = stream.getvalue()
    assert "25.0%" in text
    assert "100.0%" in text
    assert "queue<=5" in text
    assert text.endswith("\n")           # finish() terminates the line
