"""Cross-process aggregation: worker registries and span trees merge
into one coherent supervisor report, including under fault injection."""

from __future__ import annotations

import pytest

from repro.dist.faults import FaultPlan, RetryPolicy
from repro.dist.runner import ClusterSpec
from repro.system import TrillionG

SCALE = 11
CLUSTER = ClusterSpec(machines=2, threads_per_machine=2)
BLOCK = 512         # 4 blocks at scale 11 -> a real 4-task scatter


def _system(**kwargs):
    return TrillionG(SCALE, edge_factor=16, seed=7, cluster=CLUSTER,
                     block_size=BLOCK, **kwargs)


def _span_root(report, name):
    for root in report["spans"]:
        if root["name"] == name:
            return root
    raise AssertionError((name, [r["name"] for r in report["spans"]]))


def _find(node, *path):
    for name in path:
        node = next((c for c in node["children"] if c["name"] == name),
                    None)
        assert node is not None, (name, path)
    return node


def test_distributed_run_merges_worker_reports(tmp_path):
    tg = _system()
    result = tg.generate_to(tmp_path / "out", fmt="adj6",
                            processes=4)
    report = result.telemetry
    metrics = report["metrics"]
    # Worker-side counters arrived in the supervisor's registry.
    assert metrics["generator.edges"]["value"] == result.num_edges
    assert metrics["format.edges_written"]["value"] == result.num_edges
    # One attempt per worker (more when the ambient TRILLIONG_FAULT_*
    # plan injects crashes — crashed attempts raise before generating,
    # so the worker counts below stay exact).
    assert metrics["sched.attempts"]["value"] >= 4
    # Worker span trees grafted under the scheduler span.
    generate = _span_root(report, "generate")
    worker = _find(generate, "scatter", "sched.run_tasks",
                   "worker.generate")
    assert worker["count"] == 4
    assert _find(worker, "format.write_blocks")["count"] == 4


def test_crashed_attempts_count_and_retry(tmp_path):
    tg = _system(faults=FaultPlan(crash_tasks=frozenset({0})),
                 retry=RetryPolicy(retries=2))
    result = tg.generate_to(tmp_path / "out", fmt="adj6",
                            processes=4)
    metrics = result.telemetry["metrics"]
    assert metrics["sched.crashes"]["value"] >= 1
    assert metrics["sched.retries"]["value"] >= 1
    assert metrics["sched.attempts"]["value"] >= 5
    # The graph itself is unharmed (determinism is per task, not per
    # attempt), and the successful attempts' metrics all merged.
    assert metrics["generator.edges"]["value"] == result.num_edges


def test_corrupt_attempt_merges_partial_metrics(tmp_path):
    """A corrupted attempt generated real work before failing output
    validation; its snapshot must still fold into the aggregate."""
    tg = _system(faults=FaultPlan(corrupt_tasks=frozenset({1})),
                 retry=RetryPolicy(retries=2))
    result = tg.generate_to(tmp_path / "out", fmt="adj6",
                            processes=4)
    metrics = result.telemetry["metrics"]
    assert metrics["sched.corruptions"]["value"] >= 1
    # The corrupt attempt's generator counters merged on top of the
    # clean ones: strictly more edges counted than the final graph has.
    assert metrics["generator.edges"]["value"] > result.num_edges


def test_byte_identity_under_faults(tmp_path):
    clean = _system()
    clean_result = clean.generate_to(tmp_path / "clean", fmt="adj6",
                                     processes=4)
    faulty = _system(faults=FaultPlan(crash_tasks=frozenset({0}),
                                      corrupt_tasks=frozenset({2})),
                     retry=RetryPolicy(retries=2))
    faulty_result = faulty.generate_to(tmp_path / "faulty",
                                       fmt="adj6", processes=4)
    assert clean_result.num_edges == faulty_result.num_edges
    for a, b in zip(sorted(p.name for p in clean_result.paths),
                    sorted(p.name for p in faulty_result.paths)):
        assert a == b
        assert (tmp_path / "clean" / a).read_bytes() \
            == (tmp_path / "faulty" / b).read_bytes()


def test_worker_reports_retained_verbatim(tmp_path):
    """Beyond the merged aggregate, the supervisor keeps each worker's
    tagged snapshot so trace export can draw one track per worker."""
    tg = _system()
    result = tg.generate_to(tmp_path / "out", fmt="adj6", processes=4)
    reports = result.telemetry["worker_reports"]
    assert len(reports) >= 4
    assert {r["task_index"] for r in reports} == {0, 1, 2, 3}
    for report in reports:
        assert report["attempt"] >= 1
        names = [root["name"] for root in report["spans"]]
        assert "worker.generate" in names


def test_sequential_flight_rides_result_telemetry(tmp_path):
    tg = TrillionG(SCALE, edge_factor=16, seed=7, block_size=BLOCK,
                   flight=0.02)
    result = tg.generate_to(tmp_path / "g.adj6", fmt="adj6")
    flight = result.telemetry["flight"]
    assert flight["interval_seconds"] == 0.02
    assert flight["samples"]                 # final stop-time sample
    last = flight["samples"][-1]
    assert last["metrics"]["generator.edges"] == result.num_edges
    # The recorder died with the session: nothing keeps sampling.
    from repro.telemetry.flight import current_recorder
    assert current_recorder() is None


def test_flight_forensics_attached_to_failed_attempts(tmp_path,
                                                      monkeypatch):
    """A crashed attempt leaves its flight tail on the TaskAttempt; the
    clean retry does not, and no dump files survive on disk."""
    monkeypatch.setenv("TRILLIONG_FLIGHT", "0.02")
    from repro.dist.runner import LocalCluster
    from repro.system import RetryPolicy
    generator = TrillionG(SCALE, edge_factor=16, seed=7,
                          block_size=BLOCK).generator
    cluster = LocalCluster(num_workers=4)
    res = cluster.generate_to_files(
        generator, tmp_path, "adj6", processes=2,
        retry=RetryPolicy(retries=2, backoff_base=0.01,
                          backoff_max=0.05, jitter=0.0),
        faults=FaultPlan(crash_tasks=frozenset({0})))
    attempts = res.task_attempts[0]
    assert [a.outcome for a in attempts] == ["crashed", "ok"]
    forensics = attempts[0].flight
    assert forensics is not None and forensics["samples"]
    assert forensics["interval_seconds"] == 0.02
    assert attempts[1].flight is None        # success carries no tail
    assert res.flight_forensics == {0: [forensics]}
    assert list(tmp_path.glob("*.flight*")) == []


def test_worker_flight_tails_ride_worker_reports(tmp_path, monkeypatch):
    monkeypatch.setenv("TRILLIONG_FLIGHT", "0.02")
    tg = _system(flight=0.02)
    result = tg.generate_to(tmp_path / "out", fmt="adj6", processes=4)
    for report in result.telemetry["worker_reports"]:
        assert report["flight"]["samples"]
    # The supervisor's own series is there too.
    assert result.telemetry["flight"]["samples"]


@pytest.mark.parametrize("fmt", ["adj6", "tsv"])
def test_wesp_runner_spans(tmp_path, fmt):
    from repro.dist.wesp_runner import run_wesp_distributed
    from repro.telemetry import build_report
    result = run_wesp_distributed(9, 8, num_workers=2, seed=3,
                                  work_dir=tmp_path, fmt_name=fmt,
                                  processes=2)
    assert result.num_edges > 0
    report = build_report()
    assert _span_root(report, "wesp.map")["count"] == 1
    assert _span_root(report, "wesp.reduce")["count"] == 1
