"""Flight-recorder coverage: sampling, the bounded ring, crash-dump
files, environment resolution, and the process-wide session."""

from __future__ import annotations

import json
import sys
import threading

import pytest

from repro.telemetry import global_registry, span
from repro.telemetry.flight import (DEFAULT_FLIGHT_CAPACITY,
                                    DEFAULT_FLIGHT_INTERVAL, FLIGHT_ENV,
                                    FLIGHT_INTERVAL_ENV, FlightRecorder,
                                    current_recorder, flatten_metrics,
                                    flight_interval_from_env,
                                    flight_session, read_proc_vitals,
                                    resolve_flight_interval, start_flight,
                                    stop_flight)


@pytest.fixture(autouse=True)
def no_leaked_recorder():
    """A test that fails mid-session must not leave the process-wide
    recorder running for the next test."""
    yield
    stop_flight()


@pytest.fixture(autouse=True)
def clean_flight_env(monkeypatch):
    for var in (FLIGHT_ENV, FLIGHT_INTERVAL_ENV,
                "TRILLIONG_FLIGHT_CAPACITY"):
        monkeypatch.delenv(var, raising=False)


def test_flatten_metrics_flattens_each_family():
    reg = global_registry()
    reg.counter("generator.edges").inc(64)
    reg.gauge("pipeline.queue_depth").set(3)
    reg.histogram("generator.scope_size", bounds=(1.0, 2.0)).observe(1.5)
    flat = flatten_metrics(reg.snapshot())
    assert flat["generator.edges"] == 64.0
    assert flat["pipeline.queue_depth"] == 3.0
    assert flat["generator.scope_size.count"] == 1.0


def test_read_proc_vitals_best_effort():
    vitals = read_proc_vitals()
    assert all(isinstance(v, int) for v in vitals.values())
    if sys.platform == "linux":
        assert vitals["rss_bytes"] > 0


def test_sample_shape_includes_metrics_and_active_spans():
    global_registry().counter("generator.edges").inc(7)
    recorder = FlightRecorder(interval=60.0)
    with span("generate"):
        with span("format.write_blocks"):
            sample = recorder.sample()
    assert sample["elapsed"] >= 0.0
    assert sample["metrics"]["generator.edges"] == 7.0
    (stack,) = sample["spans"].values()
    assert stack == ["generate", "format.write_blocks"]
    # Outside any span the key is simply absent.
    assert "spans" not in recorder.sample()


def test_ring_evicts_oldest_and_counts_drops():
    recorder = FlightRecorder(interval=60.0, capacity=3)
    for _ in range(5):
        recorder.sample()
    assert len(recorder.tail()) == 3
    assert recorder.dropped == 2
    assert recorder.tail(limit=1)[0] is recorder.tail()[-1]
    snap = recorder.snapshot(limit=2)
    assert len(snap["samples"]) == 2
    assert snap["dropped"] == 3          # 2 evicted + 1 cut by the limit
    assert snap["capacity"] == 3


def test_sampler_thread_runs_and_stop_takes_final_sample():
    recorder = FlightRecorder(interval=0.02)
    recorder.start()
    assert recorder.running
    assert recorder.start() is recorder      # idempotent while running
    event = threading.Event()
    event.wait(0.1)
    recorder.stop()
    assert not recorder.running
    # Periodic samples plus the final one on stop.
    assert len(recorder.tail()) >= 2
    # A sub-interval run still leaves the stop-time sample.
    short = FlightRecorder(interval=60.0).start()
    short.stop()
    assert len(short.tail()) == 1


def test_dump_path_rewritten_atomically(tmp_path):
    dump = tmp_path / "part-0000.adj6.flight"
    recorder = FlightRecorder(interval=60.0, dump_path=dump)
    recorder.sample()
    doc = json.loads(dump.read_text())
    assert len(doc["samples"]) == 1
    recorder.sample()
    assert len(json.loads(dump.read_text())["samples"]) == 2
    assert list(tmp_path.glob("*.partial.*")) == []
    recorder.stop(remove_dump=True)
    assert not dump.exists()


def test_dump_survives_stop_without_removal(tmp_path):
    dump = tmp_path / "w.flight"
    recorder = FlightRecorder(interval=60.0, dump_path=dump).start()
    recorder.stop()
    assert json.loads(dump.read_text())["samples"]


@pytest.mark.parametrize("raw,expected", [
    ("", None), ("0", None), ("off", None), ("false", None),
    ("1", DEFAULT_FLIGHT_INTERVAL), ("true", DEFAULT_FLIGHT_INTERVAL),
    ("0.25", 0.25), ("garbage", DEFAULT_FLIGHT_INTERVAL),
    ("0.001", 0.01),                     # clamped to the floor
])
def test_flight_interval_from_env(monkeypatch, raw, expected):
    monkeypatch.setenv(FLIGHT_ENV, raw)
    assert flight_interval_from_env() == expected


def test_interval_env_overrides_enable_value(monkeypatch):
    monkeypatch.setenv(FLIGHT_ENV, "1")
    monkeypatch.setenv(FLIGHT_INTERVAL_ENV, "0.1")
    assert flight_interval_from_env() == 0.1


def test_resolve_flight_interval(monkeypatch):
    assert resolve_flight_interval(False) is None
    assert resolve_flight_interval(True) == DEFAULT_FLIGHT_INTERVAL
    assert resolve_flight_interval(0.2) == 0.2
    assert resolve_flight_interval(None) is None     # env unset
    monkeypatch.setenv(FLIGHT_ENV, "0.3")
    assert resolve_flight_interval(None) == 0.3
    assert resolve_flight_interval(True) == 0.3      # env wins over default


def test_capacity_env(monkeypatch):
    assert FlightRecorder(interval=1.0).capacity == DEFAULT_FLIGHT_CAPACITY
    monkeypatch.setenv("TRILLIONG_FLIGHT_CAPACITY", "7")
    assert FlightRecorder(interval=1.0).capacity == 7
    monkeypatch.setenv("TRILLIONG_FLIGHT_CAPACITY", "junk")
    assert FlightRecorder(interval=1.0).capacity == DEFAULT_FLIGHT_CAPACITY


def test_process_wide_recorder_lifecycle():
    assert current_recorder() is None
    recorder = start_flight(0.05)
    assert current_recorder() is recorder and recorder.running
    assert start_flight(0.05) is recorder    # already running: reused
    stopped = stop_flight()
    assert stopped is recorder
    assert not recorder.running
    assert stopped.tail()                    # samples survive the stop
    assert current_recorder() is None
    assert stop_flight() is None             # idempotent


def test_flight_session_off_yields_none():
    with flight_session(False) as recorder:
        assert recorder is None
    assert current_recorder() is None


def test_flight_session_runs_and_stops_recorder():
    with flight_session(0.05) as recorder:
        assert recorder is current_recorder()
        assert recorder.running
    assert current_recorder() is None
    assert not recorder.running


def test_flight_session_propagates_env_for_workers(monkeypatch):
    monkeypatch.delenv(FLIGHT_ENV, raising=False)
    import os
    with flight_session(0.25, propagate_env=True):
        assert os.environ[FLIGHT_ENV] == "0.25"
    assert FLIGHT_ENV not in os.environ
    monkeypatch.setenv(FLIGHT_ENV, "0.5")
    with flight_session(0.25, propagate_env=True):
        assert os.environ[FLIGHT_ENV] == "0.25"
    assert os.environ[FLIGHT_ENV] == "0.5"   # caller's setting restored
