"""Registry semantics: instrument behavior, the enable switch, and the
merge algebra the cross-process aggregation relies on."""

from __future__ import annotations

import pytest

from repro.telemetry import (NULL_REGISTRY, POW2_BUCKETS, Histogram,
                             MetricsRegistry, enable_telemetry,
                             global_registry, merge_metrics, registry,
                             telemetry_enabled)


def test_counter_gauge_histogram_roundtrip():
    reg = MetricsRegistry()
    reg.counter("edges").inc(5)
    reg.counter("edges").inc(2)
    reg.gauge("depth", mode="max").set(3)
    reg.gauge("depth", mode="max").set(1)       # max keeps 3
    reg.histogram("sizes", bounds=(1.0, 2.0, 4.0)).observe(2.0, count=3)
    snap = reg.snapshot()
    assert snap["edges"] == {"type": "counter", "value": 7.0}
    assert snap["depth"]["value"] == 3.0
    assert snap["sizes"]["counts"] == [0, 3, 0, 0]
    assert snap["sizes"]["sum"] == 6.0
    assert snap["sizes"]["count"] == 3


def test_instruments_are_idempotent_and_type_checked():
    reg = MetricsRegistry()
    assert reg.counter("x") is reg.counter("x")
    with pytest.raises(TypeError):
        reg.gauge("x")


def test_histogram_bucket_placement():
    hist = Histogram((1.0, 2.0, 4.0))
    for value, bucket in [(0.5, 0), (1.0, 0), (1.5, 1), (4.0, 2),
                          (100.0, 3)]:     # beyond last bound: overflow
        before = hist.counts[bucket]
        hist.observe(value)
        assert hist.counts[bucket] == before + 1, value


def test_histogram_rejects_unsorted_bounds():
    with pytest.raises(ValueError):
        Histogram((2.0, 1.0))
    with pytest.raises(ValueError):
        Histogram(())


def test_observe_bulk_matches_repeated_observe():
    a = Histogram(POW2_BUCKETS)
    b = Histogram(POW2_BUCKETS)
    pairs = [(1.0, 4), (16.0, 2), (2.0 ** 50, 1)]
    a.observe_bulk(*zip(*pairs))
    for value, count in pairs:
        b.observe(value, count)
    assert a.snapshot() == b.snapshot()


def _snap(build):
    reg = MetricsRegistry()
    build(reg)
    return reg.snapshot()


def test_merge_metrics_is_associative_and_commutative():
    def one(reg):
        reg.counter("edges").inc(10)
        reg.gauge("hw", mode="max").set(4)
        reg.histogram("h", bounds=(1.0, 8.0)).observe(3.0)

    def two(reg):
        reg.counter("edges").inc(5)
        reg.counter("retries").inc(1)
        reg.gauge("hw", mode="max").set(9)

    def three(reg):
        reg.histogram("h", bounds=(1.0, 8.0)).observe(100.0, count=2)
        reg.gauge("hw", mode="max").set(2)

    s1, s2, s3 = _snap(one), _snap(two), _snap(three)
    left = merge_metrics(merge_metrics(s1, s2), s3)
    right = merge_metrics(s1, merge_metrics(s2, s3))
    swapped = merge_metrics(s3, s1, s2)
    assert left == right == swapped
    assert left["edges"]["value"] == 15.0
    assert left["hw"]["value"] == 9.0
    assert left["h"]["counts"] == [0, 1, 2]


def test_merge_rejects_mismatched_histogram_bounds():
    s1 = _snap(lambda r: r.histogram("h", bounds=(1.0,)).observe(1.0))
    s2 = _snap(lambda r: r.histogram("h", bounds=(2.0,)).observe(1.0))
    with pytest.raises(ValueError):
        merge_metrics(s1, s2)


def test_disable_switch_routes_to_null_registry():
    enable_telemetry(False)
    assert not telemetry_enabled()
    assert registry() is NULL_REGISTRY
    reg = registry()
    reg.counter("edges").inc(1000)
    reg.gauge("hw", mode="max").set(7)
    reg.histogram("h").observe(3.0)
    assert reg.snapshot() == {}          # nothing recorded
    enable_telemetry(True)
    assert registry() is global_registry()


def test_env_var_falsy_values(monkeypatch):
    enable_telemetry(None)               # defer to the environment
    for value in ("0", "false", "NO", " Off "):
        monkeypatch.setenv("TRILLIONG_TELEMETRY", value)
        assert not telemetry_enabled()
    monkeypatch.setenv("TRILLIONG_TELEMETRY", "1")
    assert telemetry_enabled()
    monkeypatch.delenv("TRILLIONG_TELEMETRY")
    assert telemetry_enabled()           # on by default
