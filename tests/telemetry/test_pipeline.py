"""End-to-end telemetry behavior on the real pipeline: byte identity
and overhead of the no-op mode, and the paper-internals counters."""

from __future__ import annotations

import time

from repro.system import TrillionG
from repro.telemetry import enable_telemetry, reset_telemetry

SCALE = 16          # |V| = 65536, |E| = 1M: the issue's identity scale


def _generate(tmp_path, name, scale=SCALE):
    tg = TrillionG(scale, edge_factor=16, seed=7)
    return tg.generate_to(tmp_path / name, fmt="adj6")


def test_noop_mode_bytes_identical(tmp_path):
    on = _generate(tmp_path, "on.adj6")
    reset_telemetry()
    enable_telemetry(False)
    off = _generate(tmp_path, "off.adj6")
    assert on.num_edges == off.num_edges
    assert (tmp_path / "on.adj6").read_bytes() \
        == (tmp_path / "off.adj6").read_bytes()
    # Timing fields stay populated either way; the report only with on.
    assert on.elapsed_seconds > 0.0 and off.elapsed_seconds > 0.0
    assert on.telemetry is not None and off.telemetry is None


def test_noop_mode_overhead_under_two_percent():
    """With telemetry off, the hooks left in the hot path (the no-op
    registry calls, the measure-only span, the stopwatches) must add
    <2% to a scale-16 generation.  End-to-end A/B timing drowns in
    scheduler noise on small CI boxes, so measure the disabled-path
    hook cost directly and compare its per-run total against the real
    per-run wall time."""
    from repro.telemetry import Stopwatch, registry, span

    enable_telemetry(False)
    gen = TrillionG(SCALE, edge_factor=16, seed=7).generator
    t0 = time.perf_counter()
    num_blocks = sum(1 for _ in gen.iter_blocks())
    run_seconds = time.perf_counter() - t0

    reps = 10_000
    t0 = time.perf_counter()
    for _ in range(reps):
        # The per-block hook inventory: the generator's counter bundle
        # (guarded by one reg.enabled check), the writer's encode
        # stopwatch, the sink's write stopwatch + queue gauge, and one
        # span enter/exit.
        reg = registry()
        if reg.enabled:
            reg.counter("generator.blocks").inc()
        watch = Stopwatch()
        with watch:
            pass
        with watch:
            pass
        reg.gauge("pipeline.queue_high_water", mode="max").set(1)
        with span("format.write_blocks"):
            pass
    hook_seconds = (time.perf_counter() - t0) / reps * num_blocks
    assert hook_seconds < 0.02 * run_seconds, \
        (hook_seconds, run_seconds, num_blocks)


def test_paper_internal_counters(tmp_path):
    result = _generate(tmp_path, "counters.adj6", scale=12)
    metrics = result.telemetry["metrics"]
    edges = metrics["generator.edges"]["value"]
    assert edges == result.num_edges
    # RecVec reuse (perf idea #1): hits + misses == draws.
    hits = metrics["generator.recvec_reuse_hits"]["value"]
    misses = metrics["generator.recvec_reuse_misses"]["value"]
    assert misses > 0
    assert hits + misses == metrics["generator.random_draws"]["value"]
    # Recursion count per edge (Lemma 5): one observation per edge.
    recursions = metrics["generator.recursions_per_edge"]
    assert recursions["count"] == edges
    # Sampled-degree histogram covers every vertex scope.
    assert metrics["generator.scope_size"]["count"] > 0
    # Formats layer: bytes/edges written match the result.
    assert metrics["format.edges_written"]["value"] == result.num_edges
    assert metrics["format.bytes_written"]["value"] == result.bytes_written
    assert metrics["format.blocks_encoded"]["value"] \
        == metrics["generator.blocks"]["value"]


def test_span_tree_covers_generate_and_write(tmp_path):
    result = _generate(tmp_path, "spans.adj6", scale=12)
    (root,) = result.telemetry["spans"]
    assert root["name"] == "generate"
    assert root["attrs"]["scale"] == 12
    (write,) = root["children"]
    assert write["name"] == "format.write_blocks"
    assert 0.0 < write["total_seconds"] <= root["total_seconds"] + 1e-9


def test_progress_callback_reaches_total(tmp_path):
    seen = []
    tg = TrillionG(12, edge_factor=16, seed=7)
    result = tg.generate_to(tmp_path / "p.adj6", fmt="adj6",
                            progress=seen.append)
    assert seen, "progress callback never invoked"
    assert seen == sorted(seen)
    assert seen[-1] == result.num_edges
