"""Tests for seed fitting and GSCALER-style scaling (repro.fit)."""

import numpy as np
import pytest

from repro import GRAPH500, RecursiveVectorGenerator, SeedMatrix
from repro.analysis import fit_kronecker_class_slope, out_degrees
from repro.errors import ConfigurationError
from repro.fit import GraphScaler, edge_bit_moments, fit_seed_matrix


class TestEdgeBitMoments:
    def test_known_values(self):
        # Edges (0,1) and (3,3) over 2 levels:
        # src bits: 0+2 -> 2/4; dst bits: 1+2 -> 3/4; both: 0+2 -> 2/4.
        edges = np.array([[0, 1], [3, 3]])
        src, dst, both = edge_bit_moments(edges, 2)
        assert (src, dst, both) == (0.5, 0.75, 0.5)

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            edge_bit_moments(np.empty((0, 2), dtype=np.int64), 4)


class TestFitSeedMatrix:
    def test_recovers_graph500(self):
        edges = RecursiveVectorGenerator(14, 16, seed=1).edges()
        fit = fit_seed_matrix(edges, 1 << 14)
        got = np.array(fit.seed_matrix.as_tuple())
        want = np.array(GRAPH500.as_tuple())
        assert np.abs(got - want).max() < 0.03

    def test_recovers_uniform(self):
        from repro.core.seed import UNIFORM
        edges = RecursiveVectorGenerator(12, 16, UNIFORM, seed=2).edges()
        fit = fit_seed_matrix(edges, 1 << 12)
        got = np.array(fit.seed_matrix.as_tuple())
        assert np.abs(got - 0.25).max() < 0.02

    def test_recovers_asymmetric_seed(self):
        seed = SeedMatrix.rmat(0.45, 0.3, 0.15, 0.1)
        edges = RecursiveVectorGenerator(13, 16, seed, seed=3).edges()
        fit = fit_seed_matrix(edges, 1 << 13)
        got = np.array(fit.seed_matrix.as_tuple())
        assert np.abs(got - np.array(seed.as_tuple())).max() < 0.03

    def test_edge_factor(self):
        edges = RecursiveVectorGenerator(10, 8, seed=4).edges()
        fit = fit_seed_matrix(edges, 1 << 10)
        assert abs(fit.edge_factor - 8.0) < 0.5

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ConfigurationError):
            fit_seed_matrix(np.array([[0, 1]]), 1000)

    def test_fitted_entries_positive_and_normalized(self):
        edges = np.array([[0, 0]] * 10)   # degenerate all-alpha sample
        fit = fit_seed_matrix(edges, 16)
        entries = np.array(fit.seed_matrix.as_tuple())
        assert (entries > 0).all()
        assert abs(entries.sum() - 1.0) < 1e-9


class TestGraphScaler:
    @pytest.fixture(scope="class")
    def scaler(self):
        small = RecursiveVectorGenerator(12, 16, seed=5).edges()
        return GraphScaler.fit(small, 1 << 12), small

    def test_scale_up_edge_count(self, scaler):
        s, _ = scaler
        big = s.scale_to(14, seed=6)
        assert abs(big.shape[0] - 16 * (1 << 14)) / (16 * (1 << 14)) < 0.1

    def test_scale_preserves_slope(self, scaler):
        s, small = scaler
        big = s.scale_to(14, seed=6)
        slope_small = fit_kronecker_class_slope(
            out_degrees(small, 1 << 12))
        slope_big = fit_kronecker_class_slope(out_degrees(big, 1 << 14))
        assert abs(slope_small - slope_big) < 0.35

    def test_scale_down(self, scaler):
        s, _ = scaler
        tiny = s.scale_to(9, seed=7)
        assert abs(tiny.shape[0] - 16 * 512) / (16 * 512) < 0.15

    def test_generator_passthrough(self, scaler):
        s, _ = scaler
        g = s.generator(11, seed=8, noise=0.1, engine="bitwise")
        assert g.noise == 0.1
        assert g.engine == "bitwise"
        assert g.edges().shape[0] > 0

    def test_rejects_bad_scale(self, scaler):
        s, _ = scaler
        with pytest.raises(ConfigurationError):
            s.generator(0)

    def test_deterministic(self, scaler):
        s, _ = scaler
        np.testing.assert_array_equal(s.scale_to(10, seed=9),
                                      s.scale_to(10, seed=9))
