"""Pipeline on/off equivalence of the distributed write path.

The background writer thread must be invisible in the output: part and
chunk files are byte-identical with ``TRILLIONG_NO_PIPELINE=1``, under
fault injection, and across a SIGKILL mid-chunk resume.
"""

import hashlib
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

from repro.core.generator import RecursiveVectorGenerator
from repro.dist.checkpoint import CheckpointedRun
from repro.dist.faults import FaultPlan, RetryPolicy
from repro.dist.runner import LocalCluster
from repro.formats import NO_PIPELINE_ENV


def make_generator():
    return RecursiveVectorGenerator(10, 8, seed=11, block_size=64)


def digest_dir(paths):
    return {p.name: hashlib.sha256(p.read_bytes()).hexdigest()
            for p in paths}


def test_distributed_parts_identical_pipeline_off(tmp_path, monkeypatch):
    gen = make_generator()
    monkeypatch.delenv(NO_PIPELINE_ENV, raising=False)
    piped = LocalCluster(num_workers=2).generate_to_files(
        gen, tmp_path / "on", processes=1, faults=FaultPlan())
    monkeypatch.setenv(NO_PIPELINE_ENV, "1")
    direct = LocalCluster(num_workers=2).generate_to_files(
        gen, tmp_path / "off", processes=1, faults=FaultPlan())
    assert digest_dir(piped.paths) == digest_dir(direct.paths)
    assert piped.num_edges == direct.num_edges


def test_checkpointed_chunks_identical_under_fault_injection(
        tmp_path, monkeypatch):
    """Crash-injected retries + the write pipeline still land the same
    chunk bytes as a clean pipeline-off run."""
    gen = make_generator()
    faults = FaultPlan(crash_probability=0.4, seed=3)
    retry = RetryPolicy(retries=4, backoff_base=0.01, backoff_max=0.05)
    monkeypatch.delenv(NO_PIPELINE_ENV, raising=False)
    injected = LocalCluster(num_workers=2).generate_checkpointed(
        gen, tmp_path / "faulty", blocks_per_chunk=2, processes=2,
        retry=retry, faults=faults)
    assert injected.checkpoint is not None
    assert injected.checkpoint.complete

    monkeypatch.setenv(NO_PIPELINE_ENV, "1")
    clean = CheckpointedRun(make_generator(), tmp_path / "clean",
                            blocks_per_chunk=2)
    clean.run()
    assert digest_dir(injected.checkpoint.chunk_paths()) == \
        digest_dir(clean.chunk_paths())


def test_sigkill_mid_chunk_resume_identical_pipeline_on(tmp_path):
    """SIGKILL a pipelined checkpointed run mid-flight; the resumed
    output is byte-identical to a pipeline-off sequential run."""
    import repro

    src = str(Path(repro.__file__).resolve().parents[1])
    out = tmp_path / "out"
    code = (
        "from repro.core.generator import RecursiveVectorGenerator\n"
        "from repro.dist.faults import FaultPlan\n"
        "from repro.dist.runner import LocalCluster\n"
        "g = RecursiveVectorGenerator(13, 8, seed=11, block_size=64)\n"
        f"LocalCluster(num_workers=2).generate_checkpointed(\n"
        f"    g, {str(out)!r}, blocks_per_chunk=2, processes=2,\n"
        "    faults=FaultPlan())\n"
    )
    env = dict(os.environ, PYTHONPATH=src)
    env.pop(NO_PIPELINE_ENV, None)          # pipeline on in the victim
    proc = subprocess.Popen([sys.executable, "-c", code], env=env,
                            start_new_session=True)
    try:
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            if len(list(out.glob("chunk-*.adj6"))) >= 2:
                break
            if proc.poll() is not None:
                break                       # finished before the kill
            time.sleep(0.01)
        if proc.poll() is None:
            os.killpg(proc.pid, signal.SIGKILL)
    finally:
        proc.wait()

    gen = RecursiveVectorGenerator(13, 8, seed=11, block_size=64)
    resumed = CheckpointedRun(gen, out, blocks_per_chunk=2)
    resumed.run()
    assert resumed.complete

    os.environ[NO_PIPELINE_ENV] = "1"
    try:
        reference = CheckpointedRun(
            RecursiveVectorGenerator(13, 8, seed=11, block_size=64),
            tmp_path / "ref", blocks_per_chunk=2)
        reference.run()
    finally:
        del os.environ[NO_PIPELINE_ENV]
    assert digest_dir(resumed.chunk_paths()) == \
        digest_dir(reference.chunk_paths())
