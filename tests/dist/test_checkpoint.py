"""Tests for checkpointed (resumable) generation."""

from pathlib import Path

import numpy as np
import pytest

from repro.core.generator import RecursiveVectorGenerator
from repro.dist.checkpoint import CheckpointedRun
from repro.errors import ConfigurationError
from repro.formats import get_format


def make_generator(**kw):
    defaults = dict(scale=10, edge_factor=8, seed=11, block_size=64)
    defaults.update(kw)
    scale = defaults.pop("scale")
    ef = defaults.pop("edge_factor")
    return RecursiveVectorGenerator(scale, ef, **defaults)


def read_all(run):
    fmt = get_format(run.fmt)
    parts = [fmt.read_edges(p) for p in run.chunk_paths()]
    parts = [p for p in parts if p.size]
    return np.concatenate(parts) if parts else \
        np.empty((0, 2), dtype=np.int64)


class TestCheckpointedRun:
    def test_complete_run_matches_direct_generation(self, tmp_path):
        run = CheckpointedRun(make_generator(), tmp_path,
                              blocks_per_chunk=4)
        produced = run.run()
        assert run.complete
        assert produced == len(run.chunk_ranges())
        np.testing.assert_array_equal(read_all(run),
                                      make_generator().edges())

    def test_interrupted_then_resumed(self, tmp_path):
        """Partial run + fresh resume object == uninterrupted output."""
        run1 = CheckpointedRun(make_generator(), tmp_path,
                               blocks_per_chunk=2)
        run1.run(max_chunks=3)
        assert not run1.complete
        assert len(run1.pending()) > 0

        run2 = CheckpointedRun(make_generator(), tmp_path,
                               blocks_per_chunk=2)
        assert len(run2.state.completed) == 3     # manifest reloaded
        run2.run()
        assert run2.complete
        np.testing.assert_array_equal(read_all(run2),
                                      make_generator().edges())

    def test_resume_regenerates_nothing_done(self, tmp_path):
        run = CheckpointedRun(make_generator(), tmp_path,
                              blocks_per_chunk=4)
        run.run()
        again = CheckpointedRun(make_generator(), tmp_path,
                                blocks_per_chunk=4)
        assert again.run() == 0      # nothing pending

    def test_partial_file_not_counted(self, tmp_path):
        """A .partial file (crash mid-chunk) is not in the manifest and
        gets regenerated."""
        run = CheckpointedRun(make_generator(), tmp_path,
                              blocks_per_chunk=4)
        run.run(max_chunks=1)
        # Simulate a crash leaving a partial file for the next chunk.
        junk = tmp_path / (run.pending()[0][0] + ".partial")
        junk.write_bytes(b"garbage")
        resumed = CheckpointedRun(make_generator(), tmp_path,
                                  blocks_per_chunk=4)
        resumed.run()
        assert resumed.complete
        np.testing.assert_array_equal(read_all(resumed),
                                      make_generator().edges())

    def test_mismatched_config_rejected(self, tmp_path):
        CheckpointedRun(make_generator(), tmp_path,
                        blocks_per_chunk=4).run(max_chunks=1)
        with pytest.raises(ConfigurationError):
            CheckpointedRun(make_generator(seed=99), tmp_path,
                            blocks_per_chunk=4)
        with pytest.raises(ConfigurationError):
            CheckpointedRun(make_generator(), tmp_path,
                            blocks_per_chunk=8)

    def test_edge_count_tracked(self, tmp_path):
        run = CheckpointedRun(make_generator(), tmp_path,
                              blocks_per_chunk=4)
        run.run()
        assert run.num_edges == make_generator().edges().shape[0]

    def test_rejects_bad_chunk_size(self, tmp_path):
        with pytest.raises(ConfigurationError):
            CheckpointedRun(make_generator(), tmp_path,
                            blocks_per_chunk=0)

    def test_csr6_chunks(self, tmp_path):
        run = CheckpointedRun(make_generator(scale=9), tmp_path,
                              fmt="csr6", blocks_per_chunk=2)
        run.run()
        assert run.complete
        total = read_all(run)
        assert total.shape[0] == run.num_edges


class TestCrashWindows:
    """The kill windows a resumable run must heal: a chunk renamed but
    not yet recorded, a torn manifest, and corrupt strays."""

    def _drop_from_manifest(self, run, name):
        import json
        doc = json.loads(run.manifest_path.read_text())
        del doc["completed"][name]
        run.manifest_path.write_text(json.dumps(doc))

    def test_orphan_chunk_adopted_not_regenerated(self, tmp_path):
        run = CheckpointedRun(make_generator(), tmp_path,
                              blocks_per_chunk=2)
        run.run(max_chunks=3)
        orphan = run.chunk_paths()[1]
        self._drop_from_manifest(run, orphan.name)
        (tmp_path / "chunk-000009.adj6.partial.999").write_bytes(b"junk")

        before = orphan.stat().st_mtime_ns
        resumed = CheckpointedRun(make_generator(), tmp_path,
                                  blocks_per_chunk=2)
        # Adopted straight into the manifest, no rewrite of the file.
        assert orphan.name in resumed.state.completed
        assert orphan.stat().st_mtime_ns == before
        # The stale temporary was swept.
        assert not list(tmp_path.glob("*.partial*"))
        resumed.run()
        np.testing.assert_array_equal(read_all(resumed),
                                      make_generator().edges())

    def test_unparsable_manifest_rebuilt_from_chunks(self, tmp_path):
        run = CheckpointedRun(make_generator(), tmp_path,
                              blocks_per_chunk=2)
        run.run()
        run.manifest_path.write_text("{this is not json")

        resumed = CheckpointedRun(make_generator(), tmp_path,
                                  blocks_per_chunk=2)
        assert resumed.complete          # every chunk verified + adopted
        assert resumed.run() == 0        # nothing regenerated
        np.testing.assert_array_equal(read_all(resumed),
                                      make_generator().edges())

    def test_corrupt_orphan_regenerated(self, tmp_path):
        run = CheckpointedRun(make_generator(), tmp_path,
                              blocks_per_chunk=2)
        run.run(max_chunks=2)
        victim = run.chunk_paths()[0]
        self._drop_from_manifest(run, victim.name)
        data = victim.read_bytes()
        victim.write_bytes(data[:len(data) // 2])    # torn chunk

        resumed = CheckpointedRun(make_generator(), tmp_path,
                                  blocks_per_chunk=2)
        assert victim.name not in resumed.state.completed
        resumed.run()
        assert resumed.complete
        np.testing.assert_array_equal(read_all(resumed),
                                      make_generator().edges())

    def test_no_manifest_temp_left_behind(self, tmp_path):
        run = CheckpointedRun(make_generator(), tmp_path,
                              blocks_per_chunk=4)
        run.run()
        assert not (tmp_path / "manifest.tmp").exists()


class TestKillResume:
    def test_sigkill_mid_run_resumes_bit_identical(self, tmp_path):
        """SIGKILL a parallel checkpointed run (supervisor and workers),
        then resume: the merged output equals a clean sequential run."""
        import os
        import signal
        import subprocess
        import sys
        import time

        import repro

        src = str(Path(repro.__file__).resolve().parents[1])
        out = tmp_path / "out"
        code = (
            "from repro.core.generator import RecursiveVectorGenerator\n"
            "from repro.dist.faults import FaultPlan\n"
            "from repro.dist.runner import LocalCluster\n"
            f"g = RecursiveVectorGenerator(13, 8, seed=11, block_size=64)\n"
            f"LocalCluster(num_workers=2).generate_checkpointed(\n"
            f"    g, {str(out)!r}, blocks_per_chunk=2, processes=2,\n"
            "    faults=FaultPlan())\n"
        )
        env = dict(os.environ, PYTHONPATH=src)
        proc = subprocess.Popen([sys.executable, "-c", code], env=env,
                                start_new_session=True)
        try:
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                if len(list(out.glob("chunk-*.adj6"))) >= 2:
                    break
                if proc.poll() is not None:
                    break               # finished before we could kill
                time.sleep(0.01)
            if proc.poll() is None:
                os.killpg(proc.pid, signal.SIGKILL)
        finally:
            proc.wait()

        gen = make_generator(scale=13)
        resumed = CheckpointedRun(gen, out, blocks_per_chunk=2)
        assert len(resumed.state.completed) >= 2   # survived the kill
        resumed.run()
        assert resumed.complete
        np.testing.assert_array_equal(read_all(resumed),
                                      make_generator(scale=13).edges())
