"""Tests for checkpointed (resumable) generation."""

import numpy as np
import pytest

from repro.core.generator import RecursiveVectorGenerator
from repro.dist.checkpoint import CheckpointedRun
from repro.errors import ConfigurationError
from repro.formats import get_format


def make_generator(**kw):
    defaults = dict(scale=10, edge_factor=8, seed=11, block_size=64)
    defaults.update(kw)
    scale = defaults.pop("scale")
    ef = defaults.pop("edge_factor")
    return RecursiveVectorGenerator(scale, ef, **defaults)


def read_all(run):
    fmt = get_format(run.fmt)
    parts = [fmt.read_edges(p) for p in run.chunk_paths()]
    parts = [p for p in parts if p.size]
    return np.concatenate(parts) if parts else \
        np.empty((0, 2), dtype=np.int64)


class TestCheckpointedRun:
    def test_complete_run_matches_direct_generation(self, tmp_path):
        run = CheckpointedRun(make_generator(), tmp_path,
                              blocks_per_chunk=4)
        produced = run.run()
        assert run.complete
        assert produced == len(run.chunk_ranges())
        np.testing.assert_array_equal(read_all(run),
                                      make_generator().edges())

    def test_interrupted_then_resumed(self, tmp_path):
        """Partial run + fresh resume object == uninterrupted output."""
        run1 = CheckpointedRun(make_generator(), tmp_path,
                               blocks_per_chunk=2)
        run1.run(max_chunks=3)
        assert not run1.complete
        assert len(run1.pending()) > 0

        run2 = CheckpointedRun(make_generator(), tmp_path,
                               blocks_per_chunk=2)
        assert len(run2.state.completed) == 3     # manifest reloaded
        run2.run()
        assert run2.complete
        np.testing.assert_array_equal(read_all(run2),
                                      make_generator().edges())

    def test_resume_regenerates_nothing_done(self, tmp_path):
        run = CheckpointedRun(make_generator(), tmp_path,
                              blocks_per_chunk=4)
        run.run()
        again = CheckpointedRun(make_generator(), tmp_path,
                                blocks_per_chunk=4)
        assert again.run() == 0      # nothing pending

    def test_partial_file_not_counted(self, tmp_path):
        """A .partial file (crash mid-chunk) is not in the manifest and
        gets regenerated."""
        run = CheckpointedRun(make_generator(), tmp_path,
                              blocks_per_chunk=4)
        run.run(max_chunks=1)
        # Simulate a crash leaving a partial file for the next chunk.
        junk = tmp_path / (run.pending()[0][0] + ".partial")
        junk.write_bytes(b"garbage")
        resumed = CheckpointedRun(make_generator(), tmp_path,
                                  blocks_per_chunk=4)
        resumed.run()
        assert resumed.complete
        np.testing.assert_array_equal(read_all(resumed),
                                      make_generator().edges())

    def test_mismatched_config_rejected(self, tmp_path):
        CheckpointedRun(make_generator(), tmp_path,
                        blocks_per_chunk=4).run(max_chunks=1)
        with pytest.raises(ConfigurationError):
            CheckpointedRun(make_generator(seed=99), tmp_path,
                            blocks_per_chunk=4)
        with pytest.raises(ConfigurationError):
            CheckpointedRun(make_generator(), tmp_path,
                            blocks_per_chunk=8)

    def test_edge_count_tracked(self, tmp_path):
        run = CheckpointedRun(make_generator(), tmp_path,
                              blocks_per_chunk=4)
        run.run()
        assert run.num_edges == make_generator().edges().shape[0]

    def test_rejects_bad_chunk_size(self, tmp_path):
        with pytest.raises(ConfigurationError):
            CheckpointedRun(make_generator(), tmp_path,
                            blocks_per_chunk=0)

    def test_csr6_chunks(self, tmp_path):
        run = CheckpointedRun(make_generator(scale=9), tmp_path,
                              fmt="csr6", blocks_per_chunk=2)
        run.run()
        assert run.complete
        total = read_all(run)
        assert total.shape[0] == run.num_edges
