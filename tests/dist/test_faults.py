"""Tests for the fault-tolerance layer: FaultPlan, RetryPolicy, and the
supervised task scheduler, including the paper-level guarantee that
every recovery path reproduces the bit-identical graph."""

import multiprocessing as mp
import pickle
import time

import numpy as np
import pytest

from repro.core.generator import RecursiveVectorGenerator
from repro.dist.faults import (FaultPlan, RetryPolicy, TaskAttempt,
                               corrupt_file, pick_start_method, run_tasks)
from repro.dist.runner import LocalCluster, _worker_generate
from repro.errors import TaskTimeout, WorkerError

FORK_AVAILABLE = "fork" in mp.get_all_start_methods()
needs_fork = pytest.mark.skipif(not FORK_AVAILABLE,
                                reason="fork start method unavailable")

# Explicit no-fault plan: shields assertions about exact attempt counts
# from TRILLIONG_FAULT_* variables the CI fault-injection job sets.
NO_FAULTS = FaultPlan()

FAST = RetryPolicy(backoff_base=0.01, backoff_factor=1.5,
                   backoff_max=0.05, jitter=0.0)


def sort_edges(edges: np.ndarray) -> np.ndarray:
    order = np.lexsort((edges[:, 1], edges[:, 0]))
    return edges[order]


def make_generator(**kw):
    defaults = dict(scale=10, edge_factor=8, seed=7, block_size=64)
    defaults.update(kw)
    scale = defaults.pop("scale")
    ef = defaults.pop("edge_factor")
    return RecursiveVectorGenerator(scale, ef, **defaults)


# Module-level toy workers: picklable under both fork and spawn.

def _double(task):
    return task * 2


def _sleep_for(task):
    time.sleep(task)
    return task


def _always_raises(task):
    raise ValueError(f"broken task {task}")


class TestFaultPlan:
    def test_explicit_indices(self):
        plan = FaultPlan(crash_tasks=frozenset({0}),
                         hang_tasks=frozenset({1}),
                         corrupt_tasks=frozenset({2}))
        assert plan.action(0, 1) == "crash"
        assert plan.action(1, 1) == "hang"
        assert plan.action(2, 1) == "corrupt"
        assert plan.action(3, 1) is None

    def test_faults_stop_after_max_attempts(self):
        plan = FaultPlan(crash_tasks=frozenset({0}),
                         max_faulty_attempts=2)
        assert plan.action(0, 1) == "crash"
        assert plan.action(0, 2) == "crash"
        assert plan.action(0, 3) is None

    def test_probabilistic_faults_deterministic(self):
        plan = FaultPlan(crash_probability=0.5, seed=3)
        draws = [plan.action(i, 1) for i in range(64)]
        assert draws == [plan.action(i, 1) for i in range(64)]
        assert "crash" in draws and None in draws

    def test_empty(self):
        assert FaultPlan().empty
        assert not FaultPlan(crash_tasks=frozenset({1})).empty
        assert not FaultPlan(crash_probability=0.1).empty

    def test_from_env(self, monkeypatch):
        for var in ("TRILLIONG_FAULT_CRASH", "TRILLIONG_FAULT_HANG",
                    "TRILLIONG_FAULT_CORRUPT", "TRILLIONG_FAULT_PROB",
                    "TRILLIONG_FAULT_SEED", "TRILLIONG_FAULT_MAX"):
            monkeypatch.delenv(var, raising=False)
        assert FaultPlan.from_env() is None
        monkeypatch.setenv("TRILLIONG_FAULT_CRASH", "0, 2")
        monkeypatch.setenv("TRILLIONG_FAULT_PROB", "0.25")
        monkeypatch.setenv("TRILLIONG_FAULT_SEED", "9")
        plan = FaultPlan.from_env()
        assert plan.crash_tasks == frozenset({0, 2})
        assert plan.crash_probability == 0.25
        assert plan.seed == 9

    def test_plan_is_picklable(self):
        plan = FaultPlan(crash_tasks=frozenset({1}),
                         crash_probability=0.2)
        assert pickle.loads(pickle.dumps(plan)) == plan


class TestRetryPolicy:
    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(backoff_base=0.1, backoff_factor=2.0,
                             backoff_max=0.35, jitter=0.0)
        delays = [policy.backoff_delay(0, k) for k in (1, 2, 3, 4)]
        assert delays == sorted(delays)
        assert delays[0] == pytest.approx(0.1)
        assert delays[-1] == pytest.approx(0.35)

    def test_jitter_bounded_and_deterministic(self):
        policy = RetryPolicy(backoff_base=0.1, backoff_factor=1.0,
                             backoff_max=1.0, jitter=0.5, seed=4)
        first = policy.backoff_delay(3, 1)
        assert 0.1 <= first <= 0.15
        assert first == policy.backoff_delay(3, 1)
        # different tasks draw different jitter
        others = {policy.backoff_delay(t, 1) for t in range(8)}
        assert len(others) > 1

    def test_max_attempts(self):
        assert RetryPolicy(retries=3).max_attempts == 4
        assert RetryPolicy(retries=0).max_attempts == 1


class TestScheduler:
    def test_in_process_when_pool_of_one(self):
        results, history = run_tasks([1, 2, 3], _double, pool_size=1,
                                     policy=FAST, faults=NO_FAULTS)
        assert results == [2, 4, 6]
        assert all(h[-1].in_process for h in history.values())

    @needs_fork
    def test_parallel_results_in_task_order(self):
        results, history = run_tasks(list(range(6)), _double,
                                     pool_size=3, policy=FAST,
                                     faults=NO_FAULTS)
        assert results == [0, 2, 4, 6, 8, 10]
        assert all(h[-1].outcome == "ok" for h in history.values())

    @needs_fork
    def test_crash_is_retried(self):
        plan = FaultPlan(crash_tasks=frozenset({1}))
        results, history = run_tasks([5, 6], _double, pool_size=2,
                                     policy=FAST, faults=plan)
        assert results == [10, 12]
        outcomes = [a.outcome for a in history[1]]
        assert outcomes == ["crashed", "ok"]
        assert history[1][0].injected == "crash"

    @needs_fork
    def test_hang_is_killed_and_retried(self):
        plan = FaultPlan(hang_tasks=frozenset({0}), hang_seconds=30.0)
        policy = RetryPolicy(task_timeout=0.5, backoff_base=0.01,
                             backoff_max=0.02, jitter=0.0)
        t0 = time.perf_counter()
        results, history = run_tasks([3], _double, pool_size=2,
                                     policy=policy, faults=plan)
        assert results == [6]
        assert [a.outcome for a in history[0]] == ["timeout", "ok"]
        assert time.perf_counter() - t0 < 20     # not the 30s hang

    @needs_fork
    def test_exhausted_retries_raise_worker_error(self):
        policy = RetryPolicy(retries=1, backoff_base=0.01,
                             backoff_max=0.02, jitter=0.0,
                             in_process_after=99)
        with pytest.raises(WorkerError) as info:
            run_tasks([1], _always_raises, pool_size=2, policy=policy,
                      faults=NO_FAULTS)
        assert info.value.task_index == 0
        assert len(info.value.attempts) == 2
        assert all(isinstance(a, TaskAttempt)
                   for a in info.value.attempts)

    @needs_fork
    def test_all_attempts_hung_raises_task_timeout(self):
        policy = RetryPolicy(retries=1, task_timeout=0.3,
                             backoff_base=0.01, backoff_max=0.02,
                             jitter=0.0, in_process_after=99)
        with pytest.raises(TaskTimeout):
            run_tasks([10.0], _sleep_for, pool_size=2, policy=policy,
                      faults=NO_FAULTS)

    @needs_fork
    def test_in_process_fallback_after_two_deaths(self):
        plan = FaultPlan(crash_tasks=frozenset({0}),
                         max_faulty_attempts=2)
        results, history = run_tasks([7], _double, pool_size=2,
                                     policy=FAST, faults=plan)
        assert results == [14]
        trail = history[0]
        assert [a.outcome for a in trail] == ["crashed", "crashed", "ok"]
        assert not trail[0].in_process and not trail[1].in_process
        assert trail[2].in_process

    @needs_fork
    def test_on_result_called_per_task(self):
        seen = {}
        run_tasks([1, 2], _double, pool_size=2, policy=FAST,
                  faults=NO_FAULTS,
                  on_result=lambda i, r: seen.__setitem__(i, r))
        assert seen == {0: 2, 1: 4}

    def test_empty_task_list(self):
        results, history = run_tasks([], _double, pool_size=4,
                                     policy=FAST, faults=NO_FAULTS)
        assert results == [] and history == {}


class TestClusterFaultRecovery:
    """End-to-end: LocalCluster completes under injected faults and the
    merged edge set is bit-identical to a clean sequential run."""

    @needs_fork
    def test_crash_hang_corrupt_bit_identical(self, tmp_path):
        plan = FaultPlan(crash_tasks=frozenset({0}),
                         hang_tasks=frozenset({1}),
                         corrupt_tasks=frozenset({2}),
                         hang_seconds=30.0)
        policy = RetryPolicy(task_timeout=2.5, backoff_base=0.01,
                             backoff_max=0.05, jitter=0.0)
        cluster = LocalCluster(num_workers=4)
        res = cluster.generate_to_files(make_generator(), tmp_path,
                                        "adj6", processes=2,
                                        retry=policy, faults=plan)
        assert res.num_retries >= 3
        assert [a.outcome for a in res.task_attempts[0]] == \
            ["crashed", "ok"]
        assert [a.outcome for a in res.task_attempts[1]] == \
            ["timeout", "ok"]
        assert [a.outcome for a in res.task_attempts[2]] == \
            ["corrupt", "ok"]
        dist_edges = cluster.read_all_edges(res, "adj6")
        seq = make_generator().edges()
        np.testing.assert_array_equal(sort_edges(dist_edges),
                                      sort_edges(seq))

    @needs_fork
    def test_seeded_crash_storm_still_identical(self, tmp_path):
        plan = FaultPlan(crash_probability=0.6, seed=11)
        cluster = LocalCluster(num_workers=6)
        res = cluster.generate_to_files(make_generator(), tmp_path,
                                        "adj6", processes=3,
                                        retry=FAST, faults=plan)
        dist_edges = cluster.read_all_edges(res, "adj6")
        np.testing.assert_array_equal(sort_edges(dist_edges),
                                      sort_edges(make_generator().edges()))

    def test_corrupt_file_truncates(self, tmp_path):
        path = tmp_path / "blob"
        path.write_bytes(b"x" * 100)
        corrupt_file(path)
        assert path.stat().st_size == 50


class TestSpawnSafety:
    def test_pick_start_method(self):
        assert pick_start_method() in ("fork", "spawn")
        assert pick_start_method() in mp.get_all_start_methods()

    def test_worker_task_tuple_pickles_round_trip(self, tmp_path):
        """The spawn contract: a worker task must survive pickling and
        still drive the worker entry point to the same output."""
        g = make_generator(scale=8)
        cluster = LocalCluster(num_workers=2)
        from repro.dist.partition import range_partition
        ranges = range_partition(g, 2)
        tasks = cluster._build_tasks(g, tmp_path, ranges, "adj6")
        revived = pickle.loads(pickle.dumps(tasks))
        assert revived == tasks
        result = _worker_generate(revived[0])
        assert result.num_edges > 0
        assert (tmp_path / "part-0000.adj6").exists()

    def test_spawn_context_run_equals_sequential(self, tmp_path):
        g = make_generator(scale=9)
        cluster = LocalCluster(num_workers=2)
        res = cluster.generate_to_files(g, tmp_path, "adj6",
                                        processes=2,
                                        faults=NO_FAULTS,
                                        start_method="spawn")
        dist_edges = cluster.read_all_edges(res, "adj6")
        seq = make_generator(scale=9).edges()
        np.testing.assert_array_equal(sort_edges(dist_edges),
                                      sort_edges(seq))
