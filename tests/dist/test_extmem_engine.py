"""Tests for the pipelined external-memory merge engine.

Covers the bounded fan-in multi-pass merge (:class:`MergePlan` +
:func:`iter_unique_keys`), the atomic spill protocol and torn-run
rejection, prefetching readers with deferred errors, resume of
completed intermediate merge passes, and a SIGKILL-mid-merge-pass
byte-identity check.
"""

import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, DataError
from repro.telemetry import registry, reset_telemetry
from repro.util import external_sort
from repro.util.external_sort import (MergePlan, collect_chunks,
                                      iter_unique_keys, merge_sorted_runs,
                                      write_run)
from repro.util.spill import SpillStore, write_run_chunks


def make_runs(tmp_path, arrays, prefix="run"):
    paths = []
    for i, arr in enumerate(arrays):
        paths.append(write_run(np.sort(np.asarray(arr, dtype=np.int64)),
                               tmp_path / f"{prefix}-{i:06d}.run"))
    return paths


def expected_unique(arrays):
    flat = [np.asarray(a, dtype=np.int64) for a in arrays]
    if not flat:
        return np.empty(0, dtype=np.int64)
    return np.unique(np.concatenate(flat))


class TestMergePlan:
    def test_nine_runs_fan_in_two(self):
        plan = MergePlan.plan(9, 2)
        assert plan.passes[0] == ((0, 2), (2, 4), (4, 6), (6, 8), (8, 9))
        assert [len(g) for g in plan.passes] == [5, 3, 2]
        assert plan.num_intermediate_passes == 3
        assert plan.num_intermediate_runs == 10

    def test_no_passes_when_runs_fit(self):
        for n in (0, 1, 15, 16):
            plan = MergePlan.plan(n, 16)
            assert plan.passes == ()
            assert plan.num_intermediate_runs == 0

    def test_one_pass_just_over_fan_in(self):
        plan = MergePlan.plan(17, 16)
        assert plan.passes == (((0, 16), (16, 17)),)

    def test_groups_cover_every_run_exactly_once(self):
        for n, k in ((9, 2), (100, 3), (1000, 16), (17, 4)):
            plan = MergePlan.plan(n, k)
            level = n
            for groups in plan.passes:
                assert groups[0][0] == 0
                assert groups[-1][1] == level
                for (a, b), (c, d) in zip(groups, groups[1:]):
                    assert b == c
                assert all(hi - lo <= k for lo, hi in groups)
                level = len(groups)
            assert level <= k

    def test_deterministic(self):
        assert MergePlan.plan(40, 3) == MergePlan.plan(40, 3)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            MergePlan.plan(4, 1)
        with pytest.raises(ConfigurationError):
            MergePlan.plan(-1, 2)


class TestMultiPassMerge:
    def check(self, tmp_path, arrays, *, fan_in, chunk_items,
              prefetch=False):
        paths = make_runs(tmp_path, arrays)
        out = collect_chunks(iter_unique_keys(
            paths, chunk_items=chunk_items, fan_in=fan_in,
            prefetch=prefetch))
        np.testing.assert_array_equal(out, expected_unique(arrays))

    def test_fan_in_two_over_nine_runs(self, tmp_path):
        rng = np.random.default_rng(3)
        arrays = [rng.integers(0, 700, size=150) for _ in range(9)]
        for chunk in (1, 7, 64, 4096):
            self.check(tmp_path, arrays, fan_in=2, chunk_items=chunk)

    def test_duplicates_straddle_pass_boundaries(self, tmp_path):
        # The same keys appear in runs that land in *different* merge
        # groups, so the duplicate only collapses at a later pass (or
        # the final streaming merge), never inside one group.
        arrays = [[10, 20, 30]] * 9
        self.check(tmp_path, arrays, fan_in=2, chunk_items=2)

    def test_empty_and_constant_runs(self, tmp_path):
        arrays = [[], [5] * 40, [], [5] * 40, [1, 5, 9], [], [9] * 3,
                  [], []]
        self.check(tmp_path, arrays, fan_in=2, chunk_items=4)

    def test_all_runs_empty(self, tmp_path):
        paths = make_runs(tmp_path, [[]] * 7)
        out = collect_chunks(iter_unique_keys(paths, fan_in=2,
                                              prefetch=False))
        assert out.size == 0

    def test_prefetch_equals_direct(self, tmp_path):
        rng = np.random.default_rng(5)
        arrays = [rng.integers(0, 5000, size=800) for _ in range(6)]
        paths = make_runs(tmp_path, arrays)
        direct = collect_chunks(iter_unique_keys(
            paths, chunk_items=97, fan_in=3, prefetch=False))
        prefetched = collect_chunks(iter_unique_keys(
            paths, chunk_items=97, fan_in=3, prefetch=True))
        np.testing.assert_array_equal(direct, prefetched)

    def test_spill_dir_left_for_caller(self, tmp_path):
        arrays = [np.arange(i, i + 30) for i in range(0, 90, 10)]
        paths = make_runs(tmp_path, arrays)
        spill = tmp_path / "spill"
        out = collect_chunks(iter_unique_keys(
            paths, chunk_items=16, fan_in=2, spill_dir=spill,
            prefetch=False))
        np.testing.assert_array_equal(out, expected_unique(arrays))
        assert len(list(spill.glob("merge-*.run"))) == \
            MergePlan.plan(9, 2).num_intermediate_runs

    def test_validation(self, tmp_path):
        paths = make_runs(tmp_path, [[1], [2]])
        with pytest.raises(ConfigurationError):
            list(iter_unique_keys(paths, fan_in=1))
        with pytest.raises(ConfigurationError):
            list(iter_unique_keys(paths, chunk_items=0))
        with pytest.raises(ConfigurationError):
            list(iter_unique_keys(paths, resume=True))

    def test_telemetry_counters(self, tmp_path):
        reset_telemetry()
        arrays = [np.arange(i, i + 50) for i in range(0, 270, 30)]
        paths = make_runs(tmp_path, arrays)
        reset_telemetry()  # drop the spill counts from make_runs
        chunk = 16
        out = collect_chunks(iter_unique_keys(
            paths, chunk_items=chunk, fan_in=2, prefetch=False))
        np.testing.assert_array_equal(out, expected_unique(arrays))
        reg = registry()
        plan = MergePlan.plan(9, 2)
        assert reg.counter("extsort.merge_passes").value == \
            plan.num_intermediate_passes
        assert reg.counter("extsort.runs_spilled").value == \
            plan.num_intermediate_runs
        assert reg.counter("extsort.spill_bytes").value > 0
        assert reg.gauge("extsort.fan_in").value == 2.0
        peak = reg.gauge("extsort.peak_buffered_items", mode="max").value
        assert 0 < peak <= (2 + 2) * chunk


@settings(deadline=None, max_examples=40,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(data=st.lists(st.lists(st.integers(-2**40, 2**40), max_size=50),
                     max_size=9),
       fan_in=st.integers(2, 4), chunk=st.integers(1, 17))
def test_streaming_matches_numpy_unique(tmp_path, data, fan_in, chunk):
    work = Path(tempfile.mkdtemp(dir=tmp_path))
    paths = make_runs(work, data)
    out = collect_chunks(iter_unique_keys(
        paths, chunk_items=chunk, fan_in=fan_in, prefetch=False))
    np.testing.assert_array_equal(out, expected_unique(data))


class TestAtomicSpill:
    def test_producer_failure_leaves_no_files(self, tmp_path):
        def chunks():
            yield np.arange(5, dtype=np.int64)
            raise OSError("producer died")

        target = tmp_path / "out.run"
        with pytest.raises(OSError):
            write_run_chunks(chunks(), target)
        assert not target.exists()
        assert list(tmp_path.iterdir()) == []

    def test_write_then_read_roundtrip(self, tmp_path):
        keys = np.arange(1000, dtype=np.int64)
        path, items = write_run_chunks(
            (keys[:400], keys[400:400], keys[400:]), tmp_path / "r.run")
        assert items == 1000
        np.testing.assert_array_equal(
            np.fromfile(path, dtype=np.int64), keys)

    def test_torn_run_rejected(self, tmp_path):
        torn = tmp_path / "torn.run"
        torn.write_bytes(b"\x01" * 12)  # not a whole number of int64s
        with pytest.raises(DataError, match="torn"):
            external_sort._RunReader(torn, 64)
        with pytest.raises(DataError):
            list(iter_unique_keys([torn], prefetch=False))

    def test_torn_run_rejected_with_prefetch(self, tmp_path):
        torn = tmp_path / "torn.run"
        torn.write_bytes(b"\x01" * 20)
        with pytest.raises(DataError):
            list(merge_sorted_runs([torn], prefetch=True))


class TestPrefetchReader:
    def test_deferred_error_surfaces_on_consumer(self, tmp_path,
                                                 monkeypatch):
        path = write_run(np.arange(100, dtype=np.int64),
                         tmp_path / "r.run")
        real = external_sort._RunReader.next_chunk
        calls = {"n": 0}

        def flaky(self):
            calls["n"] += 1
            if calls["n"] > 1:
                raise OSError("disk vanished mid-run")
            return real(self)

        monkeypatch.setattr(external_sort._RunReader, "next_chunk", flaky)
        reader = external_sort._PrefetchReader(path, 10)
        try:
            with pytest.raises(OSError, match="disk vanished"):
                while reader.next_chunk() is not None:
                    pass
        finally:
            reader.close()
        assert not reader._thread.is_alive()

    def test_close_with_full_queue_does_not_deadlock(self, tmp_path):
        path = write_run(np.arange(10000, dtype=np.int64),
                         tmp_path / "r.run")
        reader = external_sort._PrefetchReader(path, 16)
        reader.next_chunk()  # let the pump fill its buffers
        reader.close()       # consumer abandons the stream mid-run
        assert not reader._thread.is_alive()

    def test_yields_same_chunks_as_plain_reader(self, tmp_path):
        keys = np.arange(5000, dtype=np.int64)
        path = write_run(keys, tmp_path / "r.run")
        with external_sort._PrefetchReader(path, 613) as pre:
            got = []
            while (chunk := pre.next_chunk()) is not None:
                got.append(chunk)
        np.testing.assert_array_equal(np.concatenate(got), keys)

    def test_wait_time_recorded(self, tmp_path):
        reset_telemetry()
        path = write_run(np.arange(100, dtype=np.int64),
                         tmp_path / "r.run")
        with external_sort._PrefetchReader(path, 7) as pre:
            while pre.next_chunk() is not None:
                pass
        watch = registry().counter("extsort.readahead_wait_seconds")
        assert watch.value >= 0.0


class TestResume:
    def make_inputs(self, tmp_path, seed=11):
        rng = np.random.default_rng(seed)
        arrays = [rng.integers(0, 3000, size=400) for _ in range(9)]
        return make_runs(tmp_path, arrays), expected_unique(arrays)

    def merge(self, paths, spill):
        return collect_chunks(iter_unique_keys(
            paths, chunk_items=64, fan_in=2, spill_dir=spill,
            resume=True, prefetch=False))

    def test_second_run_reuses_every_intermediate(self, tmp_path):
        paths, expected = self.make_inputs(tmp_path)
        spill = tmp_path / "spill"
        reset_telemetry()
        np.testing.assert_array_equal(self.merge(paths, spill), expected)
        assert registry().counter(
            "extsort.merge_runs_resumed").value == 0
        mtimes = {p.name: p.stat().st_mtime_ns
                  for p in spill.glob("merge-*.run")}
        reset_telemetry()
        np.testing.assert_array_equal(self.merge(paths, spill), expected)
        assert registry().counter("extsort.merge_runs_resumed").value \
            == MergePlan.plan(9, 2).num_intermediate_runs
        assert mtimes == {p.name: p.stat().st_mtime_ns
                          for p in spill.glob("merge-*.run")}

    def test_changed_inputs_purge_stale_intermediates(self, tmp_path):
        paths, _ = self.make_inputs(tmp_path)
        spill = tmp_path / "spill"
        self.merge(paths, spill)
        # Regenerate run 0 with different content (and size): the
        # manifest signature no longer matches, so nothing is reused.
        arrays = [np.arange(10)] + [np.arange(5)] * 8
        paths = make_runs(tmp_path, arrays)
        reset_telemetry()
        out = self.merge(paths, spill)
        np.testing.assert_array_equal(out, expected_unique(arrays))
        assert registry().counter(
            "extsort.merge_runs_resumed").value == 0

    def test_unrecorded_complete_run_adopted(self, tmp_path):
        # Simulate a crash inside the rename -> manifest window: the
        # intermediate run landed but was never marked completed.
        paths, expected = self.make_inputs(tmp_path)
        spill = tmp_path / "spill"
        self.merge(paths, spill)
        manifest = spill / "extsort-manifest.json"
        doc = json.loads(manifest.read_text())
        dropped = sorted(doc["completed"])[0]
        del doc["completed"][dropped]
        manifest.write_text(json.dumps(doc))
        mtime = (spill / dropped).stat().st_mtime_ns
        reset_telemetry()
        np.testing.assert_array_equal(self.merge(paths, spill), expected)
        assert (spill / dropped).stat().st_mtime_ns == mtime  # adopted
        assert registry().counter("extsort.merge_runs_resumed").value \
            == MergePlan.plan(9, 2).num_intermediate_runs

    def test_torn_unrecorded_run_remerged(self, tmp_path):
        paths, expected = self.make_inputs(tmp_path)
        spill = tmp_path / "spill"
        self.merge(paths, spill)
        manifest = spill / "extsort-manifest.json"
        doc = json.loads(manifest.read_text())
        victim = sorted(doc["completed"])[0]
        del doc["completed"][victim]
        manifest.write_text(json.dumps(doc))
        data = (spill / victim).read_bytes()
        (spill / victim).write_bytes(data[:len(data) - 3])  # tear it
        reset_telemetry()
        np.testing.assert_array_equal(self.merge(paths, spill), expected)
        assert registry().counter("extsort.merge_runs_resumed").value \
            == MergePlan.plan(9, 2).num_intermediate_runs - 1


class TestSpillStore:
    def test_names_and_tracks_runs(self, tmp_path):
        store = SpillStore(tmp_path / "spill")
        store.add_run(np.arange(5, dtype=np.int64))
        store.add_run(np.arange(3, 9, dtype=np.int64))
        assert [p.name for p in store.runs] == \
            ["run-000000.run", "run-000001.run"]
        assert store.num_runs == 2

    def test_iter_unique_matches_numpy(self, tmp_path):
        rng = np.random.default_rng(2)
        store = SpillStore(tmp_path / "spill")
        arrays = [rng.integers(0, 400, size=120) for _ in range(5)]
        for arr in arrays:
            store.add_run(np.sort(arr.astype(np.int64)))
        out = collect_chunks(store.iter_unique(chunk_items=32, fan_in=2))
        np.testing.assert_array_equal(out, expected_unique(arrays))


def test_sigkill_mid_merge_pass_resume_byte_identical(tmp_path):
    """SIGKILL a merge between intermediate passes; the resumed merge
    adopts the completed runs and produces the identical key stream."""
    import repro

    src = str(Path(repro.__file__).resolve().parents[1])
    rng = np.random.default_rng(29)
    arrays = [rng.integers(0, 1 << 22, size=120_000) for _ in range(16)]
    runs_dir = tmp_path / "runs"
    runs_dir.mkdir()
    paths = make_runs(runs_dir, arrays)
    spill = tmp_path / "spill"
    code = (
        "from pathlib import Path\n"
        "import numpy as np\n"
        "from repro.util.external_sort import (collect_chunks,\n"
        "                                      iter_unique_keys)\n"
        f"runs = sorted(Path({str(runs_dir)!r}).glob('run-*.run'))\n"
        "out = collect_chunks(iter_unique_keys(\n"
        f"    runs, chunk_items=2048, fan_in=2,\n"
        f"    spill_dir={str(spill)!r}, resume=True))\n"
        f"np.save({str(tmp_path / 'victim-done.npy')!r}, out)\n"
    )
    env = dict(os.environ, PYTHONPATH=src)
    proc = subprocess.Popen([sys.executable, "-c", code], env=env,
                            start_new_session=True)
    killed = False
    try:
        deadline = time.monotonic() + 120
        while time.monotonic() < deadline:
            if len(list(spill.glob("merge-*.run"))) >= 2:
                break
            if proc.poll() is not None:
                break                       # finished before the kill
            time.sleep(0.002)
        if proc.poll() is None:
            os.killpg(proc.pid, signal.SIGKILL)
            killed = True
    finally:
        proc.wait()

    reset_telemetry()
    resumed = collect_chunks(iter_unique_keys(
        paths, chunk_items=2048, fan_in=2, spill_dir=spill, resume=True,
        prefetch=False))
    np.testing.assert_array_equal(resumed, expected_unique(arrays))
    if killed:
        # At least one intermediate pass output survived the kill and
        # was reused instead of re-merged.
        assert registry().counter(
            "extsort.merge_runs_resumed").value >= 1
