"""Tests for the external sort / merge-dedup substrate."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.util.external_sort import (external_sort_unique,
                                      merge_sorted_runs, write_run)


def make_runs(tmp_path, arrays):
    paths = []
    for i, arr in enumerate(arrays):
        paths.append(write_run(np.sort(np.asarray(arr, dtype=np.int64)),
                               tmp_path / f"run{i}.bin"))
    return paths


class TestExternalSortUnique:
    def test_single_run(self, tmp_path):
        paths = make_runs(tmp_path, [[3, 1, 2]])
        out = external_sort_unique(paths)
        assert out.tolist() == [1, 2, 3]

    def test_merges_and_dedups(self, tmp_path):
        paths = make_runs(tmp_path, [[1, 3, 5], [2, 3, 4], [5, 6]])
        out = external_sort_unique(paths)
        assert out.tolist() == [1, 2, 3, 4, 5, 6]

    def test_duplicates_within_run(self, tmp_path):
        paths = make_runs(tmp_path, [[1, 1, 1, 2], [2, 2, 3]])
        out = external_sort_unique(paths)
        assert out.tolist() == [1, 2, 3]

    def test_empty_inputs(self, tmp_path):
        assert external_sort_unique([]).size == 0
        paths = make_runs(tmp_path, [[]])
        assert external_sort_unique(paths).size == 0

    def test_small_chunks_stress(self, tmp_path):
        """Chunk boundaries must not lose or duplicate keys."""
        rng = np.random.default_rng(0)
        arrays = [rng.integers(0, 500, size=400) for _ in range(5)]
        paths = make_runs(tmp_path, arrays)
        expected = np.unique(np.concatenate(arrays))
        for chunk in (1, 2, 3, 7, 64, 10000):
            out = external_sort_unique(paths, chunk_items=chunk)
            np.testing.assert_array_equal(out, expected)

    def test_disjoint_runs(self, tmp_path):
        paths = make_runs(tmp_path, [np.arange(0, 100),
                                     np.arange(100, 200)])
        out = external_sort_unique(paths, chunk_items=16)
        np.testing.assert_array_equal(out, np.arange(200))

    def test_identical_runs(self, tmp_path):
        paths = make_runs(tmp_path, [np.arange(50)] * 4)
        out = external_sort_unique(paths, chunk_items=8)
        np.testing.assert_array_equal(out, np.arange(50))

    def test_negative_and_large_keys(self, tmp_path):
        paths = make_runs(tmp_path, [[-5, 0, 2**50], [-5, 7]])
        out = external_sort_unique(paths)
        assert out.tolist() == [-5, 0, 7, 2**50]


class TestMergeSortedRuns:
    def test_streaming_chunks_are_sorted_and_disjoint(self, tmp_path):
        rng = np.random.default_rng(1)
        arrays = [rng.integers(0, 1000, size=300) for _ in range(4)]
        paths = make_runs(tmp_path, arrays)
        last = None
        seen = []
        for chunk in merge_sorted_runs(paths, chunk_items=32):
            assert np.all(np.diff(chunk) > 0)
            if last is not None:
                assert chunk[0] > last
            last = int(chunk[-1])
            seen.append(chunk)
        np.testing.assert_array_equal(
            np.concatenate(seen), np.unique(np.concatenate(arrays)))


class TestMergeAdversarialCases:
    """Hand-built worst cases for the chunk-level merge's cut logic."""

    def check(self, tmp_path, arrays, chunk_items):
        paths = make_runs(tmp_path, arrays)
        out = list(merge_sorted_runs(paths, chunk_items=chunk_items))
        merged = (np.concatenate(out) if out
                  else np.empty(0, dtype=np.int64))
        flat = [np.asarray(a, dtype=np.int64) for a in arrays]
        expected = np.unique(np.concatenate(flat)) if flat \
            else np.empty(0, dtype=np.int64)
        np.testing.assert_array_equal(merged, expected)

    def test_duplicates_straddle_flush_boundary(self, tmp_path):
        # chunk_items=4 puts the flush boundary inside the run of 7s:
        # the second 7 arrives after last_emitted == 7 and must be
        # dropped by the cross-flush dedup, not re-emitted.
        self.check(tmp_path, [[1, 3, 7, 7, 9], [2, 7, 8]], 4)

    def test_chunk_equals_next_runs_head(self, tmp_path):
        # Run A's entire buffered chunk equals run B's head, so the
        # side="right" cut takes the whole chunk in one step; the equal
        # keys must still collapse to one.
        self.check(tmp_path, [[5, 5, 5], [5, 6, 7]], 3)

    def test_all_runs_identical_constant(self, tmp_path):
        self.check(tmp_path, [[4] * 10, [4] * 10, [4] * 10], 4)

    def test_single_run_passthrough(self, tmp_path):
        self.check(tmp_path, [[1, 2, 2, 3, 10]], 2)

    def test_empty_runs_mixed_with_data(self, tmp_path):
        self.check(tmp_path, [[], [1, 2], [], [2, 3]], 8)

    def test_all_runs_empty(self, tmp_path):
        self.check(tmp_path, [[], []], 8)


class TestReaderHandleLifecycle:
    """Satellite regression: one open per run for the whole merge, and
    no handle leaks when the merge stops early or raises."""

    def test_reader_reads_sequentially_from_one_handle(self, tmp_path):
        from repro.util.external_sort import _RunReader
        data = np.arange(10, dtype=np.int64)
        path = write_run(data, tmp_path / "run.bin")
        with _RunReader(path, chunk_items=3) as reader:
            chunks = []
            while (chunk := reader.next_chunk()) is not None:
                chunks.append(chunk)
            np.testing.assert_array_equal(np.concatenate(chunks), data)
            assert not reader._file.closed
        assert reader._file.closed

    def test_merge_closes_all_readers_on_completion(self, tmp_path):
        from repro.util import external_sort as es
        opened = []
        original = es._RunReader.__init__

        def tracking(self, path, chunk_items):
            original(self, path, chunk_items)
            opened.append(self)

        paths = make_runs(tmp_path, [[1, 2], [2, 3], []])
        try:
            es._RunReader.__init__ = tracking
            list(es.merge_sorted_runs(paths, chunk_items=1))
        finally:
            es._RunReader.__init__ = original
        assert len(opened) == 3
        assert all(r._file.closed for r in opened)

    def test_merge_closes_readers_when_abandoned_mid_merge(self, tmp_path):
        from repro.util import external_sort as es
        opened = []
        original = es._RunReader.__init__

        def tracking(self, path, chunk_items):
            original(self, path, chunk_items)
            opened.append(self)

        paths = make_runs(tmp_path, [np.arange(100), np.arange(100, 200)])
        try:
            es._RunReader.__init__ = tracking
            stream = es.merge_sorted_runs(paths, chunk_items=4)
            next(stream)           # start the merge, then bail out
            stream.close()         # generator finalization mid-merge
        finally:
            es._RunReader.__init__ = original
        assert len(opened) == 2
        assert all(r._file.closed for r in opened)


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(st.lists(st.lists(st.integers(-100, 100), max_size=60),
                min_size=1, max_size=6),
       st.integers(min_value=1, max_value=64))
def test_external_sort_property(tmp_path, arrays, chunk):
    """external_sort_unique == np.unique of the concatenation, always."""
    import uuid
    sub = tmp_path / uuid.uuid4().hex
    sub.mkdir()
    paths = make_runs(sub, arrays)
    flat = [x for arr in arrays for x in arr]
    expected = np.unique(np.array(flat, dtype=np.int64)) if flat \
        else np.empty(0, dtype=np.int64)
    out = external_sort_unique(paths, chunk_items=chunk)
    np.testing.assert_array_equal(out, expected)


def test_deprecated_dist_shim_warns_and_aliases():
    import importlib
    import sys

    sys.modules.pop("repro.dist.external_sort", None)
    with pytest.warns(DeprecationWarning,
                      match="repro.util.external_sort"):
        shim = importlib.import_module("repro.dist.external_sort")
    assert shim.external_sort_unique is external_sort_unique
    assert shim.write_run is write_run
