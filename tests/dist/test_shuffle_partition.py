"""Tests for hash shuffle and AVS-level range partitioning (Figure 6)."""

import numpy as np
import pytest

from repro.core.generator import RecursiveVectorGenerator
from repro.dist.partition import Bin, combine, range_partition, repartition
from repro.util.shuffle import (hash_partition, mix64, partition_sizes,
                                partition_slices)


class TestMix64:
    def test_deterministic(self):
        keys = np.arange(100)
        np.testing.assert_array_equal(mix64(keys), mix64(keys))

    def test_spreads_consecutive_keys(self):
        mixed = mix64(np.arange(1000))
        buckets = np.bincount((mixed % np.uint64(10)).astype(int),
                              minlength=10)
        assert buckets.min() > 50  # roughly uniform

    def test_distinct_inputs_distinct_outputs_mostly(self):
        mixed = mix64(np.arange(10000))
        assert np.unique(mixed).size == 10000


class TestHashPartition:
    def test_partition_covers_all(self):
        keys = np.arange(1000, dtype=np.int64)
        parts = hash_partition(keys, 7)
        assert sum(p.size for p in parts) == 1000
        merged = np.sort(np.concatenate(parts))
        np.testing.assert_array_equal(merged, keys)

    def test_single_worker(self):
        keys = np.arange(10, dtype=np.int64)
        parts = hash_partition(keys, 1)
        assert len(parts) == 1
        np.testing.assert_array_equal(parts[0], keys)

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            hash_partition(np.arange(4), 0)

    def test_partition_sizes_match(self):
        keys = np.arange(5000, dtype=np.int64)
        parts = hash_partition(keys, 4)
        sizes = partition_sizes(keys, 4)
        assert sizes.tolist() == [p.size for p in parts]

    def test_roughly_balanced(self):
        keys = np.arange(40000, dtype=np.int64)
        sizes = partition_sizes(keys, 8)
        assert sizes.max() / sizes.min() < 1.1


class TestPartitionSlices:
    def test_matches_masked_reference(self):
        """The single-pass grouped layout reproduces, per worker, the
        exact sequence the old one-mask-per-worker implementation
        produced (the argsort is stable)."""
        rng = np.random.default_rng(7)
        keys = rng.integers(0, 2**40, size=5000).astype(np.int64)
        for workers in (1, 2, 7, 16):
            grouped, offsets = partition_slices(keys, workers)
            mixed = mix64(keys) % np.uint64(workers)
            for w in range(workers):
                ref = keys[mixed == np.uint64(w)]
                np.testing.assert_array_equal(
                    grouped[offsets[w]:offsets[w + 1]], ref)

    def test_offsets_structure(self):
        keys = np.arange(1000, dtype=np.int64)
        grouped, offsets = partition_slices(keys, 6)
        assert offsets.shape == (7,)
        assert offsets[0] == 0 and offsets[-1] == keys.size
        assert np.all(np.diff(offsets) >= 0)
        assert grouped.size == keys.size

    def test_hash_partition_slices_are_views(self):
        parts = hash_partition(np.arange(100, dtype=np.int64), 4)
        assert all(p.base is not None for p in parts)

    def test_sizes_consistent_with_partition_sizes(self):
        keys = np.arange(4096, dtype=np.int64)
        _, offsets = partition_slices(keys, 5)
        np.testing.assert_array_equal(np.diff(offsets),
                                      partition_sizes(keys, 5))

    def test_empty_keys(self):
        grouped, offsets = partition_slices(
            np.empty(0, dtype=np.int64), 3)
        assert grouped.size == 0
        assert offsets.tolist() == [0, 0, 0, 0]

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            partition_slices(np.arange(4), 0)


class TestBinAndCombine:
    def test_bin_rejects_empty(self):
        with pytest.raises(ValueError):
            Bin(5, 5, 0.0)

    def test_combine_respects_target(self):
        masses = np.array([10.0] * 10)
        bins = combine(masses, block_size=4, start_vertex=0,
                       target_mass=30.0)
        assert all(b.mass >= 30.0 for b in bins[:-1])
        assert sum(b.mass for b in bins) == 100.0
        assert bins[0].start == 0
        assert bins[-1].stop == 40

    def test_combine_contiguous(self):
        masses = np.array([5.0, 50.0, 5.0, 5.0])
        bins = combine(masses, 2, 100, 20.0)
        for a, b in zip(bins, bins[1:]):
            assert a.stop == b.start

    def test_combine_trailing_light_bin(self):
        masses = np.array([30.0, 30.0, 1.0])
        bins = combine(masses, 1, 0, 30.0)
        assert bins[-1].mass == 1.0


class TestRepartition:
    def test_equal_bins_split_evenly(self):
        bins = [Bin(i, i + 1, 10.0) for i in range(8)]
        out = repartition(bins, 4)
        assert len(out) == 4
        assert all(b.mass == 20.0 for b in out)

    def test_heavy_head_bin(self):
        bins = [Bin(0, 1, 100.0)] + [Bin(i, i + 1, 10.0)
                                     for i in range(1, 11)]
        out = repartition(bins, 4)
        # The hub bin takes one worker; the rest is spread over the others.
        assert out[0].mass == 100.0
        tail = [b.mass for b in out[1:]]
        assert max(tail) <= 50.0

    def test_fewer_bins_than_workers(self):
        bins = [Bin(0, 1, 10.0), Bin(1, 2, 10.0)]
        out = repartition(bins, 5)
        assert 1 <= len(out) <= 5
        assert out[-1].stop == 2

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            repartition([], 2)

    def test_total_mass_preserved(self):
        rng = np.random.default_rng(3)
        masses = rng.uniform(1, 50, size=30)
        bins = []
        pos = 0
        for m in masses:
            bins.append(Bin(pos, pos + 1, float(m)))
            pos += 1
        out = repartition(bins, 6)
        assert abs(sum(b.mass for b in out) - masses.sum()) < 1e-9


class TestRangePartition:
    def test_covers_vertex_range(self):
        g = RecursiveVectorGenerator(12, 16, seed=1, block_size=128)
        ranges = range_partition(g, 5)
        assert ranges[0].start == 0
        assert ranges[-1].stop == g.num_vertices
        for a, b in zip(ranges, ranges[1:]):
            assert a.stop == b.start

    def test_block_aligned(self):
        g = RecursiveVectorGenerator(12, 16, seed=1, block_size=128)
        for r in range_partition(g, 5)[:-1]:
            assert r.start % 128 == 0
            assert r.stop % 128 == 0

    def test_balance(self):
        g = RecursiveVectorGenerator(14, 16, seed=2, block_size=64)
        ranges = range_partition(g, 6)
        masses = np.array([r.mass for r in ranges])
        assert masses.max() / masses.mean() < 1.35

    def test_masses_match_realized_degrees(self):
        g = RecursiveVectorGenerator(11, 16, seed=3, block_size=64)
        for r in range_partition(g, 3):
            realized = int(g.degrees(r.start, r.stop).sum())
            assert realized == int(r.mass)

    def test_single_worker(self):
        g = RecursiveVectorGenerator(10, 16, seed=4, block_size=256)
        ranges = range_partition(g, 1)
        assert len(ranges) == 1
        assert (ranges[0].start, ranges[0].stop) == (0, 1024)

    def test_rejects_zero_workers(self):
        g = RecursiveVectorGenerator(10, 16, seed=4)
        with pytest.raises(ValueError):
            range_partition(g, 0)


def test_deprecated_dist_shim_warns_and_aliases():
    import importlib
    import sys

    sys.modules.pop("repro.dist.shuffle", None)
    with pytest.warns(DeprecationWarning, match="repro.util.shuffle"):
        shim = importlib.import_module("repro.dist.shuffle")
    assert shim.mix64 is mix64
    assert shim.hash_partition is hash_partition
