"""Tests for the multiprocess WES/p runner."""

import numpy as np
import pytest

from repro.dist.wesp_runner import run_wesp_distributed
from repro.models import WespMemGenerator


def load_all(result):
    parts = [np.load(p) for p in result.part_paths]
    parts = [p for p in parts if p.size]
    edges = np.concatenate(parts) if parts else \
        np.empty((0, 2), dtype=np.int64)
    order = np.lexsort((edges[:, 1], edges[:, 0]))
    return edges[order]


class TestWespDistributed:
    def test_matches_in_process_model(self, tmp_path):
        """The multiprocess dataflow and the in-process WES/p model are
        the same computation: identical output edge sets."""
        result = run_wesp_distributed(10, 8, seed=4, num_workers=3,
                                      work_dir=tmp_path, processes=2)
        dist_edges = load_all(result)
        model = WespMemGenerator(10, 8, seed=4, num_workers=3)
        expected = model.generate()
        np.testing.assert_array_equal(dist_edges, expected)

    def test_single_process_fallback(self, tmp_path):
        result = run_wesp_distributed(9, 8, seed=5, num_workers=2,
                                      work_dir=tmp_path, processes=1)
        assert result.num_edges > 3000
        assert len(result.part_paths) == 2

    def test_no_duplicates_across_parts(self, tmp_path):
        result = run_wesp_distributed(10, 8, seed=6, num_workers=4,
                                      work_dir=tmp_path, processes=1)
        edges = load_all(result)
        packed = edges[:, 0] * 1024 + edges[:, 1]
        assert np.unique(packed).size == edges.shape[0]

    def test_phases_timed(self, tmp_path):
        result = run_wesp_distributed(9, 8, seed=7, num_workers=2,
                                      work_dir=tmp_path, processes=1)
        assert result.generate_seconds > 0
        assert result.merge_seconds > 0

    def test_skew_metric(self, tmp_path):
        result = run_wesp_distributed(10, 8, seed=8, num_workers=4,
                                      work_dir=tmp_path, processes=1)
        assert result.skew >= 1.0
        assert result.skew < 2.0   # hash shuffle keeps parts balanced

    def test_deterministic(self, tmp_path):
        r1 = run_wesp_distributed(9, 8, seed=9, num_workers=2,
                                  work_dir=tmp_path / "a", processes=1)
        r2 = run_wesp_distributed(9, 8, seed=9, num_workers=2,
                                  work_dir=tmp_path / "b", processes=2)
        np.testing.assert_array_equal(load_all(r1), load_all(r2))
