"""Tests for the local multiprocessing cluster."""

import numpy as np
import pytest

from repro.core.generator import RecursiveVectorGenerator
from repro.dist.runner import ClusterSpec, DistributedResult, LocalCluster


def sort_edges(edges: np.ndarray) -> np.ndarray:
    order = np.lexsort((edges[:, 1], edges[:, 0]))
    return edges[order]


class TestClusterSpec:
    def test_num_workers(self):
        assert ClusterSpec(10, 6).num_workers == 60

    def test_default(self):
        assert ClusterSpec().num_workers == 2


class TestLocalCluster:
    def make_generator(self, **kw):
        defaults = dict(scale=11, edge_factor=16, seed=7, block_size=128)
        defaults.update(kw)
        scale = defaults.pop("scale")
        ef = defaults.pop("edge_factor")
        return RecursiveVectorGenerator(scale, ef, **defaults)

    def test_distributed_equals_sequential(self, tmp_path):
        """The headline determinism property: N workers produce exactly the
        graph a single process would."""
        g = self.make_generator()
        cluster = LocalCluster(num_workers=3)
        res = cluster.generate_to_files(g, tmp_path, "adj6", processes=2)
        dist_edges = cluster.read_all_edges(res, "adj6")
        seq = self.make_generator().edges()
        np.testing.assert_array_equal(sort_edges(dist_edges),
                                      sort_edges(seq))

    def test_part_files_created(self, tmp_path):
        g = self.make_generator()
        cluster = LocalCluster(ClusterSpec(machines=2,
                                           threads_per_machine=2))
        res = cluster.generate_to_files(g, tmp_path, "adj6", processes=1)
        assert len(res.paths) <= 4
        for p in res.paths:
            assert p.exists()
            assert p.stat().st_size > 0

    def test_worker_metadata(self, tmp_path):
        g = self.make_generator()
        res = LocalCluster(num_workers=2).generate_to_files(
            g, tmp_path, "adj6", processes=1)
        assert res.workers[0].start == 0
        assert res.workers[-1].stop == g.num_vertices
        assert all(w.elapsed_seconds >= 0 for w in res.workers)
        assert res.elapsed_seconds > 0

    def test_edge_count_matches(self, tmp_path):
        g = self.make_generator()
        res = LocalCluster(num_workers=4).generate_to_files(
            g, tmp_path, "adj6", processes=1)
        seq_count = self.make_generator().edges().shape[0]
        assert res.num_edges == seq_count

    def test_skew_reasonable(self, tmp_path):
        g = self.make_generator(scale=13, block_size=64)
        res = LocalCluster(num_workers=4).generate_to_files(
            g, tmp_path, "adj6", processes=1)
        assert res.skew < 1.5

    def test_tsv_output(self, tmp_path):
        g = self.make_generator(scale=9)
        cluster = LocalCluster(num_workers=2)
        res = cluster.generate_to_files(g, tmp_path, "tsv", processes=1)
        edges = cluster.read_all_edges(res, "tsv")
        assert edges.shape[0] == res.num_edges

    def test_noisy_distributed_consistent(self, tmp_path):
        """Workers independently re-draw the same noise stack from the
        config, so a noisy graph also survives distribution."""
        g = self.make_generator(scale=10, noise=0.1)
        cluster = LocalCluster(num_workers=3)
        res = cluster.generate_to_files(g, tmp_path, "adj6", processes=2)
        dist_edges = cluster.read_all_edges(res)
        seq = self.make_generator(scale=10, noise=0.1).edges()
        np.testing.assert_array_equal(sort_edges(dist_edges),
                                      sort_edges(seq))

    def test_empty_result_properties(self):
        res = DistributedResult()
        assert res.num_edges == 0
        assert res.skew == 1.0


class TestGenerateCheckpointed:
    def make_generator(self, **kw):
        defaults = dict(scale=10, edge_factor=8, seed=5, block_size=64)
        defaults.update(kw)
        scale = defaults.pop("scale")
        ef = defaults.pop("edge_factor")
        return RecursiveVectorGenerator(scale, ef, **defaults)

    def test_parallel_checkpointed_bit_identical(self, tmp_path):
        from repro.dist.faults import FaultPlan
        g = self.make_generator()
        cluster = LocalCluster(num_workers=2)
        res = cluster.generate_checkpointed(g, tmp_path,
                                            blocks_per_chunk=2,
                                            processes=2,
                                            faults=FaultPlan())
        assert res.checkpoint is not None and res.checkpoint.complete
        merged = cluster.read_all_edges(res, "adj6")
        seq = self.make_generator().edges()
        np.testing.assert_array_equal(sort_edges(merged),
                                      sort_edges(seq))

    def test_resume_after_completion_is_noop(self, tmp_path):
        from repro.dist.faults import FaultPlan
        cluster = LocalCluster(num_workers=2)
        cluster.generate_checkpointed(self.make_generator(), tmp_path,
                                      blocks_per_chunk=2, processes=2,
                                      faults=FaultPlan())
        again = cluster.generate_checkpointed(self.make_generator(),
                                              tmp_path,
                                              blocks_per_chunk=2,
                                              processes=2,
                                              faults=FaultPlan())
        assert again.workers == []          # nothing left to generate
        assert again.checkpoint.complete

    def test_clean_run_attempt_history(self, tmp_path):
        """Without injected faults every task completes on attempt 1."""
        from repro.dist.faults import FaultPlan
        cluster = LocalCluster(num_workers=3)
        res = cluster.generate_to_files(self.make_generator(), tmp_path,
                                        "adj6", processes=2,
                                        faults=FaultPlan())
        assert set(res.task_attempts) == {0, 1, 2}
        assert res.num_retries == 0
        assert res.num_fallbacks == 0
        for trail in res.task_attempts.values():
            assert [a.attempt for a in trail] == [1]
            assert trail[0].outcome == "ok"
