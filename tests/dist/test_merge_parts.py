"""Tests for merging distributed part files."""

import numpy as np
import pytest

from repro.core.generator import RecursiveVectorGenerator
from repro.dist import ClusterSpec, LocalCluster, merge_parts
from repro.errors import FormatError
from repro.formats import get_format


@pytest.fixture()
def distributed(tmp_path):
    g = RecursiveVectorGenerator(11, 8, seed=21, block_size=128)
    cluster = LocalCluster(ClusterSpec(machines=2, threads_per_machine=2))
    result = cluster.generate_to_files(g, tmp_path / "parts", "adj6",
                                       processes=1)
    return g, result


class TestMergeParts:
    def test_merged_equals_sequential(self, distributed, tmp_path):
        g, result = distributed
        merged = merge_parts(result.paths, g.num_vertices,
                             tmp_path / "full.adj6")
        assert merged.num_edges == result.num_edges
        edges = get_format("adj6").read_edges(merged.path)
        seq = RecursiveVectorGenerator(11, 8, seed=21,
                                       block_size=128).edges()
        np.testing.assert_array_equal(edges, seq)

    def test_cross_format_merge(self, distributed, tmp_path):
        """ADJ6 parts merged into a single CSR6 file."""
        g, result = distributed
        merged = merge_parts(result.paths, g.num_vertices,
                             tmp_path / "full.csr6", out_format="csr6")
        indptr, indices = get_format("csr6").read_csr(merged.path)
        assert indptr[-1] == result.num_edges

    def test_rejects_out_of_order_parts(self, distributed, tmp_path):
        g, result = distributed
        with pytest.raises(FormatError):
            merge_parts(list(reversed(result.paths)), g.num_vertices,
                        tmp_path / "bad.adj6")

    def test_rejects_empty_list(self, tmp_path):
        with pytest.raises(ValueError):
            merge_parts([], 16, tmp_path / "x.adj6")
