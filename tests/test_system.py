"""Tests for the TrillionG system facade."""

import numpy as np
import pytest

from repro import TrillionG
from repro.dist.runner import ClusterSpec
from repro.formats import get_format


class TestSequential:
    def test_generate_to_file(self, tmp_path):
        tg = TrillionG(scale=10, edge_factor=8, seed=1)
        result = tg.generate_to(tmp_path / "g.adj6", fmt="adj6")
        assert result.num_vertices == 1024
        assert result.num_edges > 7000
        assert result.paths[0].exists()
        assert result.bytes_written == result.paths[0].stat().st_size
        assert result.elapsed_seconds > 0

    def test_generate_edges(self):
        tg = TrillionG(scale=9, edge_factor=8, seed=2)
        e = tg.generate_edges()
        assert e.shape[0] > 3500
        assert tg.num_edges == 8 * 512

    def test_all_formats(self, tmp_path):
        for fmt in ("tsv", "adj6", "csr6"):
            tg = TrillionG(scale=8, edge_factor=8, seed=3)
            result = tg.generate_to(tmp_path / f"g.{fmt}", fmt=fmt)
            back = get_format(fmt).read_edges(result.paths[0])
            assert back.shape[0] == result.num_edges

    def test_noise_passthrough(self, tmp_path):
        tg = TrillionG(scale=9, edge_factor=8, seed=4, noise=0.1)
        result = tg.generate_to(tmp_path / "n.adj6")
        assert result.num_edges > 3000


class TestDistributed:
    def test_cluster_output_matches_sequential(self, tmp_path):
        seq = TrillionG(scale=11, edge_factor=8, seed=5,
                        block_size=128).generate_edges()
        tg = TrillionG(scale=11, edge_factor=8, seed=5, block_size=128,
                       cluster=ClusterSpec(machines=2,
                                           threads_per_machine=2))
        result = tg.generate_to(tmp_path / "parts", fmt="adj6",
                                processes=1)
        parts = [get_format("adj6").read_edges(p) for p in result.paths]
        merged = np.concatenate([p for p in parts if p.size])
        order = np.lexsort((merged[:, 1], merged[:, 0]))
        seq_order = np.lexsort((seq[:, 1], seq[:, 0]))
        np.testing.assert_array_equal(merged[order], seq[seq_order])
        assert result.num_edges == seq.shape[0]
        assert result.skew >= 1.0
