"""Tests for structural metrics, cross-checked against networkx."""

import networkx as nx
import numpy as np
import pytest

from repro import RecursiveVectorGenerator
from repro.analysis import (clustering_coefficient_sampled, pagerank,
                            reciprocity, triangle_count)


@pytest.fixture(scope="module")
def small_graph():
    g = RecursiveVectorGenerator(9, 8, seed=1)
    return g.edges(), 512


class TestReciprocity:
    def test_fully_reciprocal(self):
        edges = np.array([[0, 1], [1, 0], [2, 3], [3, 2]])
        assert reciprocity(edges, 4) == 1.0

    def test_no_reciprocity(self):
        edges = np.array([[0, 1], [1, 2]])
        assert reciprocity(edges, 4) == 0.0

    def test_half(self):
        edges = np.array([[0, 1], [1, 0], [2, 3], [0, 2]])
        assert reciprocity(edges, 4) == 0.5

    def test_empty(self):
        assert reciprocity(np.empty((0, 2), dtype=np.int64), 4) == 0.0

    def test_matches_networkx(self, small_graph):
        edges, n = small_graph
        g = nx.DiGraph()
        g.add_edges_from(map(tuple, edges.tolist()))
        assert abs(reciprocity(edges, n)
                   - nx.overall_reciprocity(g)) < 1e-9


class TestTriangles:
    def test_single_triangle(self):
        edges = np.array([[0, 1], [1, 2], [2, 0]])
        assert triangle_count(edges, 3) == 1

    def test_no_triangle(self):
        edges = np.array([[0, 1], [1, 2], [2, 3]])
        assert triangle_count(edges, 4) == 0

    def test_k4(self):
        # K4 has 4 triangles.
        edges = np.array([[a, b] for a in range(4) for b in range(4)
                          if a < b])
        assert triangle_count(edges, 4) == 4

    def test_self_loops_ignored(self):
        edges = np.array([[0, 0], [0, 1], [1, 2], [2, 0]])
        assert triangle_count(edges, 3) == 1

    def test_empty(self):
        assert triangle_count(np.empty((0, 2), dtype=np.int64), 4) == 0

    def test_matches_networkx(self, small_graph):
        edges, n = small_graph
        g = nx.Graph()
        g.add_edges_from((int(a), int(b)) for a, b in edges if a != b)
        expected = sum(nx.triangles(g).values()) // 3
        assert triangle_count(edges, n) == expected


class TestClusteringSampled:
    def test_triangle_graph(self):
        edges = np.array([[0, 1], [1, 2], [2, 0]])
        cc = clustering_coefficient_sampled(edges, 3, samples=500)
        assert cc == 1.0

    def test_star_graph(self):
        edges = np.array([[0, i] for i in range(1, 8)])
        cc = clustering_coefficient_sampled(edges, 8, samples=500)
        assert cc == 0.0

    def test_empty(self):
        assert clustering_coefficient_sampled(
            np.empty((0, 2), dtype=np.int64), 4) == 0.0

    def test_close_to_networkx_transitivity(self, small_graph):
        edges, n = small_graph
        g = nx.Graph()
        g.add_edges_from((int(a), int(b)) for a, b in edges if a != b)
        expected = nx.transitivity(g)
        got = clustering_coefficient_sampled(
            edges, n, samples=8000, rng=np.random.default_rng(7))
        assert abs(got - expected) < 0.04


class TestPagerank:
    def test_sums_to_one(self, small_graph):
        edges, n = small_graph
        pr = pagerank(edges, n)
        assert abs(pr.sum() - 1.0) < 1e-9

    def test_matches_networkx(self, small_graph):
        edges, n = small_graph
        pr = pagerank(edges, n, iterations=100)
        g = nx.DiGraph()
        g.add_nodes_from(range(n))
        g.add_edges_from(map(tuple, edges.tolist()))
        nx_pr = nx.pagerank(g, alpha=0.85)
        theirs = np.array([nx_pr[i] for i in range(n)])
        assert np.abs(pr - theirs).max() < 1e-4

    def test_dangling_nodes_handled(self):
        edges = np.array([[0, 1]])   # vertex 1 dangles
        pr = pagerank(edges, 3)
        assert abs(pr.sum() - 1.0) < 1e-9
        assert pr[1] > pr[2]          # 1 receives 0's vote

    def test_rejects_bad_damping(self):
        with pytest.raises(ValueError):
            pagerank(np.array([[0, 1]]), 2, damping=1.5)

    def test_hub_ranks_high(self):
        g = RecursiveVectorGenerator(10, 16, seed=2)
        edges = g.edges()
        pr = pagerank(edges, 1024)
        in_deg = np.bincount(edges[:, 1], minlength=1024)
        # PageRank's top vertex is among the top in-degree vertices.
        assert in_deg[pr.argmax()] >= np.percentile(in_deg, 99)


class TestEffectiveDiameter:
    def test_chain(self):
        from repro.analysis import effective_diameter
        # Path graph of 11 vertices: distances 1..10 from the ends.
        edges = np.array([[i, i + 1] for i in range(10)])
        d = effective_diameter(edges, 11, percentile=0.9, samples=11)
        assert 4 < d <= 10

    def test_small_world_graph(self):
        from repro.analysis import effective_diameter
        g = RecursiveVectorGenerator(12, 16, seed=3)
        d = effective_diameter(g.edges(), 4096, samples=16)
        # Kronecker graphs have tiny effective diameters.
        assert 1.0 < d < 6.0

    def test_empty(self):
        from repro.analysis import effective_diameter
        assert effective_diameter(np.empty((0, 2), dtype=np.int64),
                                  4) == 0.0

    def test_rejects_bad_percentile(self):
        from repro.analysis import effective_diameter
        with pytest.raises(ValueError):
            effective_diameter(np.array([[0, 1]]), 2, percentile=1.5)

    def test_matches_exact_on_small_graph(self):
        """Against exact all-pairs distances from networkx."""
        from repro.analysis import effective_diameter
        g = RecursiveVectorGenerator(8, 8, seed=4)
        edges = g.edges()
        und = nx.Graph()
        und.add_edges_from((int(a), int(b)) for a, b in edges if a != b)
        dists = []
        for _, lengths in nx.all_pairs_shortest_path_length(und):
            dists.extend(d for d in lengths.values() if d > 0)
        exact = float(np.percentile(dists, 90))
        sampled = effective_diameter(edges, 256, samples=256)
        assert abs(sampled - exact) <= 1.0
