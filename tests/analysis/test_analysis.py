"""Tests for the analysis package (degree, fitting, stats, compare)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import RecursiveVectorGenerator
from repro.analysis import (GraphStats, ccdf, chi2_two_sample_statistic,
                            degree_histogram, fit_gaussian,
                            fit_kronecker_class_slope, fit_zipf_slope,
                            graph_stats, histograms_similar, in_degrees,
                            ks_two_sample, log_binned_histogram,
                            oscillation_score, out_degrees)


class TestDegree:
    def test_out_in_degrees(self):
        edges = np.array([[0, 1], [0, 2], [1, 2]])
        assert out_degrees(edges, 4).tolist() == [2, 1, 0, 0]
        assert in_degrees(edges, 4).tolist() == [0, 1, 2, 0]

    def test_histogram_basic(self):
        hist = degree_histogram(np.array([0, 1, 1, 3, 3, 3]))
        assert hist.degrees.tolist() == [1, 3]
        assert hist.counts.tolist() == [2, 3]
        assert hist.num_edges == 1 * 2 + 3 * 3

    def test_histogram_keep_zero(self):
        hist = degree_histogram(np.array([0, 0, 2]), drop_zero=False)
        assert hist.degrees.tolist() == [0, 2]
        assert hist.num_vertices == 3

    def test_histogram_empty(self):
        hist = degree_histogram(np.array([], dtype=np.int64))
        assert hist.degrees.size == 0

    def test_loglog(self):
        hist = degree_histogram(np.array([1, 2, 2, 4, 4, 4, 4]))
        x, y = hist.loglog()
        assert x.tolist() == [0.0, 1.0, 2.0]
        assert y.tolist() == [0.0, 1.0, 2.0]

    def test_ccdf_monotone(self):
        degs, tail = ccdf(np.array([1, 1, 2, 5, 9]))
        assert tail[0] == 1.0
        assert np.all(np.diff(tail) <= 0)

    def test_log_binned(self):
        seq = np.concatenate([np.ones(100), np.full(10, 100)])
        centers, density = log_binned_histogram(seq)
        assert centers.size > 0
        assert density[0] > density[-1]


class TestFitting:
    def test_exact_power_law_slope(self):
        """A synthetic exact power law recovers its slope."""
        ranks = np.arange(1, 2049)
        freqs = 1e6 * ranks ** -1.5
        slope = fit_zipf_slope(freqs)  # already sorted descending
        assert abs(slope + 1.5) < 0.05

    def test_fit_requires_data(self):
        with pytest.raises(ValueError):
            fit_zipf_slope(np.array([1.0, 2.0]))

    def test_class_slope_exact(self):
        """Degrees exactly equal to the Lemma 6 class means recover the
        slope exactly."""
        levels = 12
        us = np.arange(1 << levels, dtype=np.uint64)
        ones = np.bitwise_count(us).astype(np.int64)
        degrees = 1e5 * (0.24 / 0.76) ** ones
        slope = fit_kronecker_class_slope(degrees)
        assert abs(slope - math.log2(0.24 / 0.76)) < 1e-6

    def test_class_slope_on_generated_graph(self):
        g = RecursiveVectorGenerator(13, 16, seed=5)
        deg = out_degrees(g.edges(), g.num_vertices)
        assert abs(fit_kronecker_class_slope(deg)
                   - g.seed_matrix.out_zipf_slope()) < 0.25

    def test_gaussian_fit(self):
        rng = np.random.default_rng(0)
        fit = fit_gaussian(rng.normal(16, 4, size=20000))
        assert fit.looks_gaussian
        assert abs(fit.mean - 16) < 0.2
        assert abs(fit.std - 4) < 0.2

    def test_gaussian_rejects_power_law(self):
        rng = np.random.default_rng(1)
        heavy = (1.0 / rng.random(20000)) ** 1.5
        assert not fit_gaussian(heavy).looks_gaussian

    def test_gaussian_fit_empty(self):
        with pytest.raises(ValueError):
            fit_gaussian(np.array([]))

    def test_gaussian_fit_constant(self):
        fit = fit_gaussian(np.full(10, 3.0))
        assert fit.std == 0.0

    def test_oscillation_drops_with_noise(self):
        """The Figure 9 effect, quantified."""
        plain = RecursiveVectorGenerator(15, 16, seed=6,
                                         engine="bitwise").edges()
        noisy = RecursiveVectorGenerator(15, 16, seed=6, noise=0.1,
                                         engine="bitwise").edges()
        s_plain = oscillation_score(out_degrees(plain, 1 << 15))
        s_noisy = oscillation_score(out_degrees(noisy, 1 << 15))
        assert s_noisy < s_plain

    def test_oscillation_short_sequence(self):
        assert oscillation_score(np.array([1, 2, 3])) == 0.0


class TestStats:
    def test_basic(self):
        edges = np.array([[0, 1], [1, 0], [1, 1]])
        s = graph_stats(edges, 3)
        assert s.num_edges == 3
        assert s.is_simple
        assert s.self_loops == 1
        assert s.max_out_degree == 2
        assert s.zero_out_degree_vertices == 1
        assert math.isclose(s.density, 3 / 9)

    def test_duplicates_detected(self):
        edges = np.array([[0, 1], [0, 1]])
        assert not graph_stats(edges, 2).is_simple

    def test_empty(self):
        s = graph_stats(np.empty((0, 2), dtype=np.int64), 5)
        assert s.num_edges == 0 and s.is_simple

    def test_str(self):
        s = graph_stats(np.array([[0, 1]]), 2)
        assert "|V|=2" in str(s)


class TestCompare:
    def test_ks_same_distribution(self):
        rng = np.random.default_rng(2)
        a = rng.normal(size=3000)
        b = rng.normal(size=3000)
        result = ks_two_sample(a, b)
        assert result.pvalue > 0.001

    def test_ks_different_distributions(self):
        rng = np.random.default_rng(3)
        a = rng.normal(0, 1, size=3000)
        b = rng.normal(2, 1, size=3000)
        assert ks_two_sample(a, b).pvalue < 1e-6

    def test_ks_against_scipy(self):
        from scipy import stats as sps
        rng = np.random.default_rng(4)
        a = rng.exponential(size=500)
        b = rng.exponential(1.3, size=700)
        ours = ks_two_sample(a, b)
        theirs = sps.ks_2samp(a, b)
        assert abs(ours.statistic - theirs.statistic) < 1e-12
        assert abs(ours.pvalue - theirs.pvalue) < 0.02

    def test_ks_empty_rejected(self):
        with pytest.raises(ValueError):
            ks_two_sample(np.array([]), np.array([1.0]))

    def test_chi2_identical(self):
        counts = np.array([100, 200, 300])
        stat, dof = chi2_two_sample_statistic(counts, counts)
        assert stat == 0.0 and dof == 2

    def test_chi2_shape_mismatch(self):
        with pytest.raises(ValueError):
            chi2_two_sample_statistic(np.array([1]), np.array([1, 2]))

    def test_chi2_drops_sparse_cells(self):
        a = np.array([1000, 1])
        b = np.array([1000, 2])
        stat, dof = chi2_two_sample_statistic(a, b)
        assert dof == 0  # only one usable cell -> no dof

    def test_histograms_similar_same_process(self):
        rng = np.random.default_rng(5)
        a = np.bincount(rng.poisson(10, 20000), minlength=40)
        b = np.bincount(rng.poisson(10, 20000), minlength=40)
        assert histograms_similar(a, b)

    def test_histograms_dissimilar(self):
        rng = np.random.default_rng(6)
        a = np.bincount(rng.poisson(8, 20000), minlength=40)
        b = np.bincount(rng.poisson(14, 20000), minlength=40)
        assert not histograms_similar(a, b)


@settings(max_examples=25)
@given(st.lists(st.integers(0, 50), min_size=1, max_size=500))
def test_histogram_conserves_counts(seq):
    hist = degree_histogram(np.array(seq), drop_zero=False)
    assert hist.num_vertices == len(seq)
    assert hist.num_edges == sum(seq)
