"""Tests for CSR construction and BFS kernels, cross-checked vs networkx."""

import networkx as nx
import numpy as np
import pytest

from repro import RecursiveVectorGenerator
from repro.analysis import (bfs_levels, bfs_parents, build_csr,
                            reachable_count, symmetrize,
                            validate_bfs_parents)


class TestBuildCsr:
    def test_basic(self):
        edges = np.array([[1, 2], [0, 1], [1, 0]])
        indptr, indices = build_csr(edges, 3)
        assert indptr.tolist() == [0, 1, 3, 3]
        assert indices[0] == 1               # row 0
        assert sorted(indices[1:3].tolist()) == [0, 2]   # row 1

    def test_rows_sorted(self):
        edges = np.array([[0, 5], [0, 1], [0, 3]])
        _, indices = build_csr(edges, 8)
        assert indices.tolist() == [1, 3, 5]

    def test_empty(self):
        indptr, indices = build_csr(np.empty((0, 2), dtype=np.int64), 4)
        assert indptr.tolist() == [0, 0, 0, 0, 0]
        assert indices.size == 0


class TestBfs:
    def chain(self, n=6):
        edges = np.array([[i, i + 1] for i in range(n - 1)])
        return build_csr(edges, n), n

    def test_chain_parents(self):
        (indptr, indices), n = self.chain()
        parent = bfs_parents(indptr, indices, 0, n)
        assert parent.tolist() == [0, 0, 1, 2, 3, 4]

    def test_chain_levels(self):
        (indptr, indices), n = self.chain()
        level = bfs_levels(indptr, indices, 0, n)
        assert level.tolist() == [0, 1, 2, 3, 4, 5]

    def test_unreachable(self):
        edges = np.array([[0, 1]])
        indptr, indices = build_csr(edges, 4)
        parent = bfs_parents(indptr, indices, 0, 4)
        assert parent[2] == -1 and parent[3] == -1
        assert reachable_count(parent) == 2

    def test_isolated_root(self):
        indptr, indices = build_csr(np.empty((0, 2), dtype=np.int64), 3)
        parent = bfs_parents(indptr, indices, 1, 3)
        assert reachable_count(parent) == 1
        assert parent[1] == 1

    def test_matches_networkx_on_generated_graph(self):
        g = RecursiveVectorGenerator(10, 8, seed=3)
        edges = symmetrize(g.edges(), 1024)
        indptr, indices = build_csr(edges, 1024)
        nxg = nx.DiGraph()
        nxg.add_nodes_from(range(1024))
        nxg.add_edges_from(map(tuple, edges.tolist()))
        for root in (0, 5, 100):
            parent = bfs_parents(indptr, indices, root, 1024)
            level = bfs_levels(indptr, indices, root, 1024)
            nx_lengths = nx.single_source_shortest_path_length(nxg, root)
            assert reachable_count(parent) == len(nx_lengths)
            for v, d in nx_lengths.items():
                assert level[v] == d

    def test_validation_accepts_correct_parents(self):
        g = RecursiveVectorGenerator(9, 8, seed=4)
        edges = symmetrize(g.edges(), 512)
        indptr, indices = build_csr(edges, 512)
        parent = bfs_parents(indptr, indices, 0, 512)
        assert validate_bfs_parents(parent, 0, indptr, indices)

    def test_validation_rejects_corrupt_parents(self):
        g = RecursiveVectorGenerator(9, 8, seed=4)
        edges = symmetrize(g.edges(), 512)
        indptr, indices = build_csr(edges, 512)
        parent = bfs_parents(indptr, indices, 0, 512)
        bad = parent.copy()
        reached = np.nonzero(bad >= 0)[0]
        victim = int(reached[-1])
        if victim == 0:
            pytest.skip("graph too small to corrupt")
        # Point the victim's parent at a non-neighbour.
        row = set(indices[indptr[victim]:indptr[victim + 1]].tolist())
        non_neighbour = next(x for x in range(512)
                             if x not in row and x != victim)
        # Corrupt: claim victim's parent is someone with no edge to it.
        row_of = set(indices[indptr[non_neighbour]:
                             indptr[non_neighbour + 1]].tolist())
        if victim in row_of:
            pytest.skip("picked an actual neighbour")
        bad[victim] = non_neighbour
        assert not validate_bfs_parents(bad, 0, indptr, indices,
                                        sample=10**9)

    def test_validation_rejects_bad_root(self):
        indptr, indices = build_csr(np.array([[0, 1]]), 2)
        parent = np.array([1, 0])
        assert not validate_bfs_parents(parent, 0, indptr, indices)
