"""Tests for edge-array transforms."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (induced_subgraph, permute_vertices, relabel,
                            remove_self_loops, sample_edges, symmetrize,
                            to_networkx)


def rng():
    return np.random.default_rng(0)


class TestSymmetrize:
    def test_adds_reverse_edges(self):
        edges = np.array([[0, 1], [2, 3]])
        out = symmetrize(edges, 4)
        pairs = set(map(tuple, out.tolist()))
        assert pairs == {(0, 1), (1, 0), (2, 3), (3, 2)}

    def test_idempotent(self):
        edges = np.array([[0, 1], [1, 0], [2, 2]])
        once = symmetrize(edges, 4)
        twice = symmetrize(once, 4)
        np.testing.assert_array_equal(once, twice)

    def test_empty(self):
        out = symmetrize(np.empty((0, 2), dtype=np.int64), 4)
        assert out.shape[0] == 0

    def test_no_duplicates(self):
        edges = np.array([[0, 1], [1, 0]])
        out = symmetrize(edges, 4)
        assert out.shape[0] == 2


class TestRemoveSelfLoops:
    def test_removes(self):
        edges = np.array([[0, 0], [0, 1], [2, 2]])
        out = remove_self_loops(edges)
        assert out.tolist() == [[0, 1]]

    def test_empty(self):
        assert remove_self_loops(
            np.empty((0, 2), dtype=np.int64)).shape[0] == 0


class TestRelabel:
    def test_mapping_applied(self):
        edges = np.array([[0, 1], [1, 2]])
        mapping = np.array([10, 11, 12])
        out = relabel(edges, mapping)
        assert out.tolist() == [[10, 11], [11, 12]]

    def test_permute_is_bijection(self):
        edges = np.array([[i, (i + 1) % 8] for i in range(8)])
        out = permute_vertices(edges, 8, rng())
        # Edge count preserved and all endpoints still in range.
        assert out.shape == edges.shape
        assert out.min() >= 0 and out.max() < 8
        # Degrees are permuted, not changed in multiset.
        before = sorted(np.bincount(edges[:, 0], minlength=8))
        after = sorted(np.bincount(out[:, 0], minlength=8))
        assert before == after


class TestInducedSubgraph:
    def test_filters_both_endpoints(self):
        edges = np.array([[0, 1], [1, 2], [2, 3]])
        out = induced_subgraph(edges, np.array([1, 2]))
        assert out.tolist() == [[1, 2]]

    def test_empty_graph(self):
        out = induced_subgraph(np.empty((0, 2), dtype=np.int64),
                               np.array([0]))
        assert out.shape[0] == 0


class TestSampleEdges:
    def test_fraction_respected(self):
        edges = np.arange(2000).reshape(1000, 2)
        out = sample_edges(edges, 0.25, rng())
        assert out.shape[0] == 250

    def test_full_fraction_returns_all(self):
        edges = np.arange(20).reshape(10, 2)
        out = sample_edges(edges, 1.0, rng())
        np.testing.assert_array_equal(out, edges)

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            sample_edges(np.array([[0, 1]]), 0.0, rng())
        with pytest.raises(ValueError):
            sample_edges(np.array([[0, 1]]), 1.5, rng())

    def test_sample_is_subset(self):
        edges = np.arange(200).reshape(100, 2)
        out = sample_edges(edges, 0.3, rng())
        all_pairs = set(map(tuple, edges.tolist()))
        assert all(tuple(e) in all_pairs for e in out.tolist())


class TestToNetworkx:
    def test_directed(self):
        g = to_networkx(np.array([[0, 1], [1, 0]]), 4)
        assert g.number_of_nodes() == 4
        assert g.number_of_edges() == 2
        assert g.is_directed()

    def test_undirected(self):
        g = to_networkx(np.array([[0, 1], [1, 0]]), directed=False)
        assert g.number_of_edges() == 1


@settings(max_examples=30)
@given(st.lists(st.tuples(st.integers(0, 15), st.integers(0, 15)),
                max_size=60))
def test_symmetrize_property(pairs):
    """Symmetrized graph contains every edge's reverse, exactly once."""
    edges = (np.array(pairs, dtype=np.int64) if pairs
             else np.empty((0, 2), dtype=np.int64))
    out = symmetrize(edges, 16)
    out_pairs = set(map(tuple, out.tolist()))
    assert len(out_pairs) == out.shape[0]          # no duplicates
    for u, v in out_pairs:
        assert (v, u) in out_pairs                 # closed under reverse
    for u, v in pairs:
        assert (u, v) in out_pairs                 # original preserved
