"""Tests for the closed-form expected degree distribution."""

import math

import numpy as np
import pytest
from scipy import stats as sps

from repro import GRAPH500, RecursiveVectorGenerator
from repro.analysis import (binomial_pmf, expected_degree_ccdf,
                            expected_degree_distribution, out_degrees)
from repro.core.seed import UNIFORM


class TestBinomialPmf:
    def test_matches_scipy(self):
        ks = np.arange(0, 30)
        ours = binomial_pmf(100, 0.13, ks)
        theirs = sps.binom.pmf(ks, 100, 0.13)
        np.testing.assert_allclose(ours, theirs, rtol=1e-10)

    def test_huge_n_tiny_p_stable(self):
        # The Theorem 1 regime: n = 1e9 trials, p = 1e-8.
        ks = np.arange(0, 60)
        pmf = binomial_pmf(10**9, 1e-8, ks)
        assert np.all(np.isfinite(pmf))
        assert abs(pmf.sum() - 1.0) < 1e-6
        # Poisson(10) limit.
        poisson = sps.poisson.pmf(ks, 10.0)
        np.testing.assert_allclose(pmf, poisson, rtol=1e-5)

    def test_edge_cases(self):
        assert binomial_pmf(5, 0.0, np.array([0]))[0] == 1.0
        assert binomial_pmf(5, 1.0, np.array([5]))[0] == 1.0
        assert binomial_pmf(5, 0.3, np.array([-1, 6])).sum() == 0.0

    def test_rejects_bad_p(self):
        with pytest.raises(ValueError):
            binomial_pmf(10, 1.5, np.array([1]))


class TestExpectedDistribution:
    def test_pmf_normalized(self):
        ks, pmf = expected_degree_distribution(GRAPH500, 12, 16 * 4096)
        assert abs(pmf.sum() - 1.0) < 1e-6

    def test_mean_is_edge_factor(self):
        ks, pmf = expected_degree_distribution(GRAPH500, 12, 16 * 4096)
        mean = float((ks * pmf).sum())
        assert abs(mean - 16.0) < 0.2

    def test_uniform_seed_is_single_binomial(self):
        n, e = 1 << 10, 8 << 10
        ks, pmf = expected_degree_distribution(UNIFORM, 10, e)
        direct = binomial_pmf(e, 1.0 / n, ks)
        np.testing.assert_allclose(pmf, direct, rtol=1e-10)

    def test_ccdf_monotone(self):
        ks, tail = expected_degree_ccdf(GRAPH500, 12, 16 * 4096)
        assert np.all(np.diff(tail) <= 1e-15)
        assert abs(tail[0] - 1.0) < 1e-6

    def test_theory_shows_oscillation(self):
        """The mixture of geometrically spaced binomials produces the
        non-monotonic log-PMF that Figure 9(a) displays."""
        ks, pmf = expected_degree_distribution(GRAPH500, 16, 16 << 16)
        mid = pmf[5:200]
        diffs = np.diff(np.log(mid[mid > 0]))
        # Log-PMF slope changes sign repeatedly in the body.
        assert (np.diff(np.sign(diffs)) != 0).sum() > 3


class TestTheoryVsGenerated:
    SCALE, EF = 13, 16
    N = 1 << SCALE

    def chi2(self, method: str, seed: int) -> tuple[float, float]:
        ks, pmf = expected_degree_distribution(GRAPH500, self.SCALE,
                                               self.EF * self.N)
        g = RecursiveVectorGenerator(self.SCALE, self.EF, seed=seed,
                                     engine="bitwise",
                                     degree_method=method)
        deg = out_degrees(g.edges(), self.N)
        hist = np.bincount(deg, minlength=ks.size)[:ks.size]
        expected = pmf * self.N
        keep = expected > 10
        stat = float((((hist[keep] - expected[keep]) ** 2)
                      / expected[keep]).sum())
        dof = int(keep.sum()) - 1
        return stat / dof, float(sps.chi2.sf(stat, dof))

    def test_exact_binomial_method_matches_theory(self):
        """End-to-end correctness: generated degrees under the exact
        Theorem 1 sampling match the closed-form mixture."""
        chi2_per_dof, p = self.chi2("binomial", seed=1)
        assert p > 1e-3, f"chi2/dof={chi2_per_dof:.2f}"

    def test_normal_approximation_error_is_measurable(self):
        """Theorem 1's Normal approximation distorts the low-degree body
        measurably (most rows have np < 1, outside the CLT regime) —
        quantifying the approximation the paper adopts."""
        chi2_per_dof, _ = self.chi2("normal", seed=1)
        assert chi2_per_dof > 1.3
        # ... but the distortion is small in absolute terms.
        assert chi2_per_dof < 5.0
