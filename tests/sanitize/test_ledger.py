"""The sanitizer ledger: derivation/draw/write recording, live
violation detection (duplicate derivations, cross-thread draws), the
rng hooks, write-order capture through the pipeline sinks, and the
off-mode guarantees (no proxies, byte-identical output)."""

from __future__ import annotations

import threading

import numpy as np

from repro.core.generator import RecursiveVectorGenerator
from repro.core.rng import spawn_streams, stream
from repro.formats import get_format
from repro.sanitize import (GeneratorProxy, SanitizerLedger,
                            enable_sanitize, ledger, sanitize_enabled,
                            stream_key)


def _codes(led):
    return [v["code"] for v in led.violations]


# -- switches ----------------------------------------------------------


def test_override_beats_environment(monkeypatch):
    monkeypatch.delenv("TRILLIONG_SANITIZE", raising=False)
    assert not sanitize_enabled()
    enable_sanitize(True)
    assert sanitize_enabled()
    enable_sanitize(None)
    monkeypatch.setenv("TRILLIONG_SANITIZE", "1")
    assert sanitize_enabled()


def test_off_mode_returns_raw_generator():
    enable_sanitize(False)
    gen = stream(3, 1)
    assert isinstance(gen, np.random.Generator)
    assert ledger().derivations == []


# -- derivations and duplicate detection -------------------------------


def test_stream_derivations_are_recorded():
    enable_sanitize(True)
    stream(5, 0)
    stream(5, 1)
    led = ledger()
    assert [d["key"] for d in led.derivations] == [
        stream_key("stream", 5, (0,)), stream_key("stream", 5, (1,))]
    assert _codes(led) == []


def test_duplicate_derivation_is_flagged():
    enable_sanitize(True)
    stream(5, 0, 2)
    stream(5, 0, 2)
    led = ledger()
    assert _codes(led) == ["duplicate-derivation"]
    assert stream_key("stream", 5, (0, 2)) in led.violations[0]["message"]


def test_spawn_and_stream_keys_are_disjoint():
    # spawn_streams children use spawn-key derivation, not the stream
    # label path — the ledger keys them under a different kind so the
    # two schemes never collide as "duplicates".
    enable_sanitize(True)
    spawn_streams(5, 2)
    stream(5, 0)
    stream(5, 1)
    led = ledger()
    kinds = {d["kind"] for d in led.derivations}
    assert kinds == {"spawn", "stream"}
    assert _codes(led) == []


# -- draws -------------------------------------------------------------


def test_draws_are_recorded_with_fingerprints():
    enable_sanitize(True)
    gen = stream(7, 1)
    a = gen.integers(0, 100, size=8)
    gen.random(4)
    led = ledger()
    assert [d["method"] for d in led.draws] == ["integers", "random"]
    assert led.draws[0]["crc"] == __import__("zlib").crc32(a.tobytes())


def test_same_seed_draws_have_same_fingerprint():
    enable_sanitize(True)
    first = stream(11, 3).integers(0, 1 << 40, size=64)
    second = stream(11, 3).integers(0, 1 << 40, size=64)
    led = ledger()
    np.testing.assert_array_equal(first, second)
    assert led.draws[0]["crc"] == led.draws[1]["crc"]
    # the re-derivation itself is the (intended) duplicate violation
    assert _codes(led) == ["duplicate-derivation"]


def test_cross_thread_draw_is_flagged():
    enable_sanitize(True)
    gen = stream(9, 0)
    done = threading.Event()

    def drain():
        gen.random(4)
        done.set()

    worker = threading.Thread(target=drain, name="test-drainer")
    worker.start()
    worker.join()
    assert done.is_set()
    led = ledger()
    assert "cross-thread-draw" in _codes(led)
    assert "test-drainer" in "".join(v["message"] for v in led.violations)


def test_proxy_forwards_non_draw_attributes():
    enable_sanitize(True)
    gen = stream(2)
    assert gen.bit_generator is not None
    assert repr(gen).startswith("GeneratorProxy(")
    assert ledger().draws == []  # attribute access is not a draw


# -- ledger bounding ---------------------------------------------------


def test_ledger_bounds_events_and_counts_drops():
    led = SanitizerLedger(max_events=3)
    for i in range(5):
        led.record_derivation("stream", 0, (i,))
    assert len(led.derivations) == 3
    assert led.dropped["derivations"] == 2
    snap = led.snapshot()
    assert snap["dropped"]["derivations"] == 2


def test_write_sequences_are_per_file():
    led = SanitizerLedger()
    led.record_write("a.adj6", 10, 1)
    led.record_write("b.adj6", 20, 2)
    led.record_write("a.adj6", 30, 3)
    seqs = [(w["file"], w["file_seq"]) for w in led.writes]
    assert seqs == [("a.adj6", 0), ("b.adj6", 0), ("a.adj6", 1)]


# -- pipeline write-order capture --------------------------------------


def test_block_write_order_is_recorded(tmp_path, monkeypatch):
    monkeypatch.setenv("TRILLIONG_PIPELINE_DEPTH", "1")
    enable_sanitize(True)
    gen = RecursiveVectorGenerator(9, 4, seed=1)
    fmt = get_format("adj6")
    fmt.write_blocks(tmp_path / "g.adj6", gen.iter_blocks(),
                     gen.num_vertices)
    led = ledger()
    writes = [w for w in led.writes if w["file"] == "g.adj6"]
    assert writes, "no writes recorded through the pipeline sink"
    assert [w["file_seq"] for w in writes] == list(range(len(writes)))
    from repro import contracts
    contracts.enable_contracts(True)
    try:
        contracts.check_sanitizer_trace(led.snapshot())
    finally:
        contracts.enable_contracts(None)


# -- off/on byte identity ----------------------------------------------


def test_output_bytes_identical_with_sanitizer_on(tmp_path):
    def generate(label, on):
        enable_sanitize(on)
        gen = RecursiveVectorGenerator(9, 4, seed=3)
        fmt = get_format("adj6")
        fmt.write_blocks(tmp_path / label, gen.iter_blocks(),
                         gen.num_vertices)
        return (tmp_path / label).read_bytes()

    assert generate("off.adj6", False) == generate("on.adj6", True)


def test_proxy_draws_match_raw_generator():
    raw = np.random.default_rng(np.random.SeedSequence([4, 1]))
    led = SanitizerLedger()
    proxy = GeneratorProxy(
        np.random.default_rng(np.random.SeedSequence([4, 1])),
        "stream:4:1", led)
    np.testing.assert_array_equal(raw.integers(0, 1 << 30, size=32),
                                  proxy.integers(0, 1 << 30, size=32))
    np.testing.assert_array_equal(raw.random(16), proxy.random(16))
    assert len(led.draws) == 2
