"""Shared fixture: every test in this package runs against a clean
global ledger, and the programmatic sanitizer override is always
restored so the suite's ``TRILLIONG_SANITIZE`` environment (CI runs the
whole suite both ways) is back in charge afterwards."""

from __future__ import annotations

import pytest

from repro.sanitize import enable_sanitize, reset_sanitizer


@pytest.fixture(autouse=True)
def clean_sanitizer():
    reset_sanitizer()
    yield
    enable_sanitize(None)
    reset_sanitizer()
