"""Trace serialization and diffing: round trips, the diff's causal
ordering (first diverging derivation/draw/write), the CLI exit codes,
the atexit capture, and the ``check_sanitizer_trace`` contract."""

from __future__ import annotations

import json
import os
import subprocess
import sys

import numpy as np
import pytest

from repro import contracts
from repro.core.rng import stream
from repro.sanitize import (SanitizerLedger, diff_traces, enable_sanitize,
                            ledger, load_trace, write_trace)
from repro.sanitize.diff import main as diff_main


def _traced_run(tmp_path, name, seed, *, draws=3):
    """One miniature traced run: derive a stream, draw from it a few
    times, record one write, and serialize the ledger."""
    led = SanitizerLedger()
    key = led.record_derivation("stream", seed, (0,))
    gen = np.random.default_rng(np.random.SeedSequence([seed, 0]))
    for _ in range(draws):
        values = gen.integers(0, 1 << 40, size=32)
        led.record_draw(key, "integers", values, None, "MainThread")
    led.record_write(f"{name}.adj6", 256, 0xBEEF)
    return write_trace(tmp_path / f"{name}.json", source=led)


# -- round trip --------------------------------------------------------


def test_write_and_load_round_trip(tmp_path):
    enable_sanitize(True)
    stream(5, 1).random(8)
    path = write_trace(tmp_path / "trace.json")
    doc = load_trace(path)
    snap = ledger().snapshot()
    assert doc["derivations"] == snap["derivations"]
    assert doc["draws"] == snap["draws"]
    assert doc["meta"]["pid"] == os.getpid()


def test_load_rejects_non_trace_documents(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"version": 99}))
    with pytest.raises(ValueError, match="version"):
        load_trace(bad)
    truncated = tmp_path / "truncated.json"
    truncated.write_text(json.dumps({"version": 1, "derivations": []}))
    with pytest.raises(ValueError, match="draws"):
        load_trace(truncated)


# -- diffing -----------------------------------------------------------


def test_identical_runs_agree(tmp_path):
    a = load_trace(_traced_run(tmp_path, "run1", seed=7))
    b = load_trace(_traced_run(tmp_path, "run2", seed=7))
    assert diff_traces(a, b) is None  # file names differ; traces agree


def test_diff_pinpoints_first_diverging_derivation(tmp_path):
    a = load_trace(_traced_run(tmp_path, "a", seed=7))
    b = load_trace(_traced_run(tmp_path, "b", seed=8))
    divergence = diff_traces(a, b)
    assert divergence is not None
    assert divergence.category == "derivations"
    assert divergence.index == 0
    assert "stream:7:0" in divergence.render()
    assert "stream:8:0" in divergence.render()


def test_diff_pinpoints_first_diverging_draw(tmp_path):
    # Same derivations, but run B makes one extra draw in the middle —
    # the classic "an extra sample consumed the stream" bug.  The diff
    # must land on the draw where the CRCs first disagree, not on the
    # writes that diverge downstream of it.
    def run(name, extra_draw):
        led = SanitizerLedger()
        key = led.record_derivation("stream", 7, (0,))
        gen = np.random.default_rng(np.random.SeedSequence([7, 0]))
        for step in range(4):
            if step == 2 and extra_draw:
                led.record_draw(key, "integers", gen.integers(0, 9, 4),
                                None, "MainThread")
            led.record_draw(key, "integers",
                            gen.integers(0, 1 << 40, size=32),
                            None, "MainThread")
        led.record_write(f"{name}.adj6", 512, zlib_crc(name, extra_draw))
        return load_trace(write_trace(tmp_path / f"{name}.json",
                                      source=led))

    def zlib_crc(name, extra):
        return 111 if extra else 222  # writes diverge too, downstream

    a, b = run("a", False), run("b", True)
    divergence = diff_traces(a, b)
    assert divergence is not None
    assert divergence.category == "draws"
    assert divergence.index == 2
    assert "first diverging draw at #2" in divergence.render()


def test_diff_reports_truncated_trace(tmp_path):
    a = load_trace(_traced_run(tmp_path, "a", seed=7, draws=3))
    b = load_trace(_traced_run(tmp_path, "b", seed=7, draws=2))
    divergence = diff_traces(a, b)
    assert divergence is not None
    assert divergence.category == "draws"
    assert divergence.index == 2
    assert divergence.right is None
    assert "trace B ends" in divergence.render()


# -- CLI ---------------------------------------------------------------


def test_cli_exit_codes(tmp_path, capsys):
    same_a = _traced_run(tmp_path, "same_a", seed=3)
    same_b = _traced_run(tmp_path, "same_b", seed=3)
    other = _traced_run(tmp_path, "other", seed=4)

    assert diff_main([str(same_a), str(same_b)]) == 0
    assert "traces agree" in capsys.readouterr().out

    assert diff_main([str(same_a), str(other)]) == 1
    assert "first diverging derivation" in capsys.readouterr().out

    assert diff_main([str(same_a), str(tmp_path / "missing.json")]) == 2
    assert "error" in capsys.readouterr().err


def test_cli_surfaces_recorded_violations(tmp_path, capsys):
    led = SanitizerLedger()
    led.record_derivation("stream", 1, (0,))
    led.record_derivation("stream", 1, (0,))
    path = write_trace(tmp_path / "dup.json", source=led)
    assert diff_main([str(path), str(path)]) == 0
    out = capsys.readouterr().out
    assert "duplicate-derivation" in out


def test_atexit_env_capture_writes_trace(tmp_path):
    # TRILLIONG_SANITIZE_TRACE captures any run without code changes.
    target = tmp_path / "auto.json"
    env = dict(os.environ,
               TRILLIONG_SANITIZE="1",
               TRILLIONG_SANITIZE_TRACE=str(target),
               PYTHONPATH="src")
    code = "from repro.core.rng import stream; stream(3, 1).random(4)"
    subprocess.run([sys.executable, "-c", code], check=True, env=env,
                   cwd=os.getcwd())
    doc = load_trace(target)
    assert [d["key"] for d in doc["derivations"]] == ["stream:3:1"]
    assert len(doc["draws"]) == 1


# -- contracts ---------------------------------------------------------


@pytest.fixture
def contracts_on():
    contracts.enable_contracts(True)
    yield
    contracts.enable_contracts(None)


def test_contract_passes_on_real_trace(tmp_path, contracts_on):
    doc = load_trace(_traced_run(tmp_path, "ok", seed=5))
    contracts.check_sanitizer_trace(doc)


def test_contract_flags_write_order_hole(tmp_path, contracts_on):
    doc = load_trace(_traced_run(tmp_path, "holey", seed=5))
    doc["writes"][0]["file_seq"] = 4  # hole: block 0..3 never landed
    with pytest.raises(contracts.ContractViolation, match="order"):
        contracts.check_sanitizer_trace(doc)


def test_contract_flags_non_monotonic_seq(tmp_path, contracts_on):
    doc = load_trace(_traced_run(tmp_path, "shuffled", seed=5))
    doc["draws"].reverse()
    with pytest.raises(contracts.ContractViolation):
        contracts.check_sanitizer_trace(doc)
