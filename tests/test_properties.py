"""Cross-stack property-based tests (hypothesis).

These exercise the whole pipeline with randomized configurations —
arbitrary valid seed matrices, scales, edge factors, noise levels — and
assert the invariants that must hold for *every* configuration:
well-formed output, determinism, partition independence, dedup, CDF
consistency, and format round-trips.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.generator import RecursiveVectorGenerator
from repro.core.noise import NoisySeedStack, max_noise
from repro.core.probability import brute_force_cdf
from repro.core.recvec import build_recvec, determine_edge
from repro.core.seed import SeedMatrix


@st.composite
def seed_matrices(draw):
    """Arbitrary strictly positive, normalized 2x2 seeds."""
    weights = [draw(st.floats(min_value=0.05, max_value=1.0))
               for _ in range(4)]
    total = sum(weights)
    return SeedMatrix.rmat(*(w / total for w in weights))


@st.composite
def generator_configs(draw):
    return {
        "scale": draw(st.integers(min_value=4, max_value=10)),
        "edge_factor": draw(st.integers(min_value=1, max_value=8)),
        "seed_matrix": draw(seed_matrices()),
        "seed": draw(st.integers(min_value=0, max_value=2**31)),
    }


@settings(max_examples=20, deadline=None)
@given(generator_configs())
def test_generated_graph_is_wellformed(config):
    """Every configuration yields in-range, duplicate-free edges with
    realized count near the target."""
    g = RecursiveVectorGenerator(**config)
    edges = g.edges()
    n = g.num_vertices
    if edges.shape[0]:
        assert edges.min() >= 0
        assert edges.max() < n
        packed = edges[:, 0] * np.int64(n) + edges[:, 1]
        assert np.unique(packed).size == edges.shape[0]
    # Realized |E| equals the drawn degree sequence exactly and never
    # overshoots the target by more than sampling noise.  (It may land
    # well below the target at tiny scales with extreme seeds, where hub
    # scopes clip at |V| — a graph simply cannot hold that many distinct
    # edges in its hot rows.)
    target = g.num_edges
    assert edges.shape[0] == int(g.degrees().sum())
    assert edges.shape[0] < target + 5 * np.sqrt(target) + 10
    clipped = (g.degrees() >= g.num_vertices).any()
    if not clipped:
        assert abs(edges.shape[0] - target) < 5 * np.sqrt(target) + 10


@settings(max_examples=15, deadline=None)
@given(generator_configs(),
       st.integers(min_value=1, max_value=40))
def test_partition_independence_property(config, cut):
    """Any split point produces the same graph as a whole-range run."""
    g1 = RecursiveVectorGenerator(**config)
    whole = g1.edges()
    n = g1.num_vertices
    cut = min(cut * (n // 41) + 1, n - 1)
    g2 = RecursiveVectorGenerator(**config)
    part_a = g2.edges(0, cut)
    part_b = RecursiveVectorGenerator(**config).edges(cut, n)
    np.testing.assert_array_equal(whole,
                                  np.concatenate([part_a, part_b]))


@settings(max_examples=20, deadline=None)
@given(seed_matrices(), st.integers(min_value=2, max_value=8),
       st.integers(min_value=0, max_value=255),
       st.floats(min_value=0.0, max_value=0.999))
def test_recvec_inverts_cdf_for_any_seed(seed_matrix, levels, u, frac):
    """Algorithm 5 == brute-force CDF inversion for arbitrary seeds."""
    u &= (1 << levels) - 1
    recvec = build_recvec(seed_matrix, u, levels)
    cdf = brute_force_cdf(seed_matrix, u, levels)
    x = frac * float(cdf[-1])
    v = determine_edge(x, recvec)
    assert cdf[v] <= x < cdf[v + 1] or (x >= cdf[-2] and v == len(cdf) - 2)


@settings(max_examples=20, deadline=None)
@given(seed_matrices(), st.integers(min_value=2, max_value=10))
def test_recvec_monotone_for_any_seed(seed_matrix, levels):
    for u in (0, (1 << levels) - 1, 1):
        rv = build_recvec(seed_matrix, u, levels)
        assert np.all(np.diff(rv) >= -1e-15)
        assert rv[0] >= 0


@settings(max_examples=15, deadline=None)
@given(seed_matrices(), st.integers(min_value=2, max_value=8),
       st.integers(min_value=0, max_value=2**31))
def test_noisy_stack_total_mass_one(seed_matrix, levels, rng_seed):
    noise = max_noise(seed_matrix) * 0.9
    stack = NoisySeedStack.draw(seed_matrix, levels, noise,
                                np.random.default_rng(rng_seed))
    total = stack.row_probabilities(
        np.arange(1 << levels, dtype=np.uint64)).sum()
    assert abs(float(total) - 1.0) < 1e-9


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(generator_configs(),
       st.sampled_from(["tsv", "adj6", "csr6"]))
def test_format_roundtrip_any_graph(tmp_path, config, fmt_name):
    """Any generated graph survives any format round-trip."""
    import uuid

    from repro.formats import get_format
    g = RecursiveVectorGenerator(**config)
    edges = g.edges()
    fmt = get_format(fmt_name)
    path = tmp_path / f"{uuid.uuid4().hex}.{fmt_name}"
    fmt.write(path, g.iter_adjacency(), g.num_vertices)
    back = fmt.read_edges(path)
    np.testing.assert_array_equal(back, edges)


@settings(max_examples=15, deadline=None)
@given(generator_configs())
def test_degrees_are_consistent_with_edges(config):
    g = RecursiveVectorGenerator(**config)
    degrees = g.degrees()
    edges = g.edges()
    realized = np.bincount(edges[:, 0], minlength=g.num_vertices) \
        if edges.shape[0] else np.zeros(g.num_vertices, dtype=np.int64)
    np.testing.assert_array_equal(degrees, realized)


@settings(max_examples=10, deadline=None)
@given(generator_configs(), st.floats(min_value=0.1, max_value=0.9))
def test_noise_keeps_graph_wellformed(config, noise_fraction):
    noise = noise_fraction * max_noise(config["seed_matrix"])
    g = RecursiveVectorGenerator(noise=noise, **config)
    edges = g.edges()
    n = g.num_vertices
    if edges.shape[0]:
        packed = edges[:, 0] * np.int64(n) + edges[:, 1]
        assert np.unique(packed).size == edges.shape[0]


@settings(max_examples=10, deadline=None)
@given(generator_configs())
def test_engines_preserve_edge_budget(config):
    """All engines respect the realized-degree sequence exactly (they
    share the Theorem 1 draws)."""
    counts = {}
    for engine in ("vectorized", "bitwise"):
        g = RecursiveVectorGenerator(engine=engine, **config)
        counts[engine] = np.bincount(g.edges()[:, 0],
                                     minlength=g.num_vertices) \
            if g.edges().shape[0] else np.zeros(g.num_vertices)
    np.testing.assert_array_equal(counts["vectorized"],
                                  counts["bitwise"])
