"""Every example application must run cleanly end to end."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def test_examples_present():
    """Deliverable check: at least a quickstart plus three scenarios."""
    assert "quickstart.py" in EXAMPLES
    assert len(EXAMPLES) >= 4


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True, text=True, timeout=300)
    assert result.returncode == 0, (
        f"{name} failed:\n{result.stdout[-2000:]}\n"
        f"{result.stderr[-2000:]}")
    assert result.stdout.strip(), f"{name} printed nothing"
