"""Stateful property test: any legal StreamWriter interaction sequence
produces a file whose contents read back exactly as written."""

import tempfile
from pathlib import Path

import numpy as np
from hypothesis import settings
from hypothesis.stateful import (RuleBasedStateMachine, initialize,
                                 invariant, rule)
from hypothesis import strategies as st

from repro.formats import get_format

NUM_VERTICES = 64


class StreamWriterMachine(RuleBasedStateMachine):
    """Drives all three writers in lockstep with a model dict."""

    @initialize(fmt_names=st.just(("tsv", "adj6", "csr6")))
    def setup(self, fmt_names):
        self.tmp = tempfile.TemporaryDirectory()
        self.writers = {}
        for name in fmt_names:
            path = Path(self.tmp.name) / f"m.{name}"
            self.writers[name] = get_format(name).open_writer(
                path, NUM_VERTICES)
        self.model: dict[int, list[int]] = {}
        self.next_vertex = 0
        self.closed = False

    @rule(gap=st.integers(min_value=0, max_value=5),
          neighbours=st.lists(st.integers(0, NUM_VERTICES - 1),
                              max_size=6, unique=True))
    def add_vertex(self, gap, neighbours):
        if self.next_vertex >= NUM_VERTICES:
            return   # vertex space exhausted; sequence simply ends
        vertex = min(self.next_vertex + gap, NUM_VERTICES - 1)
        vs = np.array(sorted(neighbours), dtype=np.int64)
        for writer in self.writers.values():
            writer.add(vertex, vs)
        if len(vs):
            self.model[vertex] = vs.tolist()
        self.next_vertex = vertex + 1

    @invariant()
    def edge_counts_agree(self):
        if getattr(self, "closed", True):
            return
        counts = {w.num_edges for w in self.writers.values()}
        assert len(counts) == 1

    def teardown(self):
        if not getattr(self, "writers", None):
            return
        results = {name: w.close() for name, w in self.writers.items()}
        expected_edges = sum(len(v) for v in self.model.values())
        for name, result in results.items():
            assert result.num_edges == expected_edges
            read_back = {}
            for u, vs in get_format(name).iter_adjacency(result.path):
                read_back[u] = vs.tolist()
            assert read_back == self.model, name
        self.tmp.cleanup()


TestStreamWriterStateful = StreamWriterMachine.TestCase
TestStreamWriterStateful.settings = settings(
    max_examples=25, stateful_step_count=20, deadline=None)
