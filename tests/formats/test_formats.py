"""Tests for the TSV / ADJ6 / CSR6 graph formats."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import RecursiveVectorGenerator
from repro.errors import FormatError
from repro.formats import (Adj6Format, Csr6Format, TsvFormat,
                           available_formats, get_format)
from repro.formats.base import decode_id6, encode_id6


class TestRegistry:
    def test_all_three_registered(self):
        assert available_formats() == ["adj6", "csr6", "tsv"]

    def test_lookup_case_insensitive(self):
        assert get_format("ADJ6").name == "adj6"

    def test_unknown_format(self):
        with pytest.raises(FormatError):
            get_format("parquet")


class TestId6Codec:
    def test_roundtrip(self):
        vals = np.array([0, 1, 2**24, 2**40, 2**48 - 1], dtype=np.int64)
        assert decode_id6(encode_id6(vals)).tolist() == vals.tolist()

    def test_six_bytes_each(self):
        assert len(encode_id6(np.array([7, 8], dtype=np.int64))) == 12

    def test_rejects_out_of_range(self):
        with pytest.raises(FormatError):
            encode_id6(np.array([2**48], dtype=np.int64))
        with pytest.raises(FormatError):
            encode_id6(np.array([-1], dtype=np.int64))

    def test_rejects_truncated(self):
        with pytest.raises(FormatError):
            decode_id6(b"\x00" * 7)

    @given(st.lists(st.integers(min_value=0, max_value=2**48 - 1),
                    min_size=0, max_size=100))
    def test_roundtrip_property(self, values):
        arr = np.array(values, dtype=np.int64)
        assert decode_id6(encode_id6(arr)).tolist() == values


@pytest.fixture(scope="module")
def graph():
    g = RecursiveVectorGenerator(9, 8, seed=77)
    return g, g.edges()


@pytest.mark.parametrize("fmt_name", ["tsv", "adj6", "csr6"])
class TestRoundTrip:
    def test_adjacency_roundtrip(self, fmt_name, graph, tmp_path):
        g, edges = graph
        fmt = get_format(fmt_name)
        res = fmt.write(tmp_path / f"g.{fmt_name}", g.iter_adjacency(), 512)
        assert res.num_edges == edges.shape[0]
        back = fmt.read_edges(res.path)
        np.testing.assert_array_equal(back, edges)

    def test_write_edges_roundtrip(self, fmt_name, graph, tmp_path):
        _, edges = graph
        fmt = get_format(fmt_name)
        res = fmt.write_edges(tmp_path / f"e.{fmt_name}", edges, 512)
        back = fmt.read_edges(res.path)
        np.testing.assert_array_equal(back, edges)

    def test_empty_graph(self, fmt_name, tmp_path):
        fmt = get_format(fmt_name)
        res = fmt.write(tmp_path / f"empty.{fmt_name}", [], 16)
        assert res.num_edges == 0
        assert fmt.read_edges(res.path).shape == (0, 2)

    def test_bytes_written_matches_file(self, fmt_name, graph, tmp_path):
        g, _ = graph
        fmt = get_format(fmt_name)
        res = fmt.write(tmp_path / f"s.{fmt_name}", g.iter_adjacency(), 512)
        assert res.bytes_written == res.path.stat().st_size


class TestAdj6Specifics:
    def test_record_size(self, tmp_path):
        fmt = Adj6Format()
        res = fmt.write(tmp_path / "one.adj6",
                        [(3, np.array([1, 2, 5]))], 8)
        # 6 (id) + 4 (degree) + 3*6 (neighbours)
        assert res.bytes_written == 6 + 4 + 18

    def test_truncated_file_detected(self, tmp_path):
        fmt = Adj6Format()
        fmt.write(tmp_path / "t.adj6", [(3, np.array([1, 2, 5]))], 8)
        data = (tmp_path / "t.adj6").read_bytes()
        (tmp_path / "t.adj6").write_bytes(data[:-3])
        with pytest.raises(FormatError):
            list(fmt.iter_adjacency(tmp_path / "t.adj6"))

    def test_smaller_than_tsv_at_large_ids(self, tmp_path):
        """The paper's size claim: ADJ6 is ~3-4x smaller than TSV once
        vertex ids are long (trillion-scale ids are 12-13 digits)."""
        rng = np.random.default_rng(0)
        base = 2**40
        adjacency = [(base + u,
                      np.sort(rng.integers(base, base + 10**6, size=16)))
                     for u in range(200)]
        adj = Adj6Format().write(tmp_path / "b.adj6", adjacency, 2**41)
        tsv = TsvFormat().write(tmp_path / "b.tsv", adjacency, 2**41)
        assert tsv.bytes_written > 3 * adj.bytes_written


class TestCsr6Specifics:
    def test_header_magic(self, tmp_path):
        fmt = Csr6Format()
        fmt.write(tmp_path / "h.csr6", [(0, np.array([1]))], 4)
        assert (tmp_path / "h.csr6").read_bytes()[:4] == b"CSR6"

    def test_rejects_unsorted_vertices(self, tmp_path):
        fmt = Csr6Format()
        with pytest.raises(FormatError):
            fmt.write(tmp_path / "u.csr6",
                      [(3, np.array([1])), (1, np.array([2]))], 8)

    def test_rejects_unsorted_neighbours(self, tmp_path):
        fmt = Csr6Format()
        with pytest.raises(FormatError):
            fmt.write(tmp_path / "n.csr6", [(0, np.array([5, 1]))], 8)

    def test_rejects_out_of_range_vertex(self, tmp_path):
        fmt = Csr6Format()
        with pytest.raises(FormatError):
            fmt.write(tmp_path / "r.csr6", [(9, np.array([1]))], 8)

    def test_rejects_non_csr_file(self, tmp_path):
        (tmp_path / "junk.csr6").write_bytes(b"JUNKJUNKJUNKJUNKJUNKJUNK")
        with pytest.raises(FormatError):
            Csr6Format().read_csr(tmp_path / "junk.csr6")

    def test_read_csr_arrays(self, tmp_path, graph):
        g, edges = graph
        fmt = Csr6Format()
        fmt.write(tmp_path / "c.csr6", g.iter_adjacency(), 512)
        indptr, indices = fmt.read_csr(tmp_path / "c.csr6")
        assert indptr.size == 513
        assert indptr[-1] == edges.shape[0]
        deg = np.bincount(edges[:, 0], minlength=512)
        np.testing.assert_array_equal(np.diff(indptr), deg)


class TestTsvSpecifics:
    def test_malformed_line(self, tmp_path):
        (tmp_path / "bad.tsv").write_text("1\t2\nnot a line\n")
        with pytest.raises(FormatError):
            list(TsvFormat().iter_adjacency(tmp_path / "bad.tsv"))

    def test_blank_lines_skipped(self, tmp_path):
        (tmp_path / "blank.tsv").write_text("1\t2\n\n1\t3\n")
        pairs = list(TsvFormat().iter_adjacency(tmp_path / "blank.tsv"))
        assert pairs[0][0] == 1
        assert pairs[0][1].tolist() == [2, 3]


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(st.lists(
    st.tuples(st.integers(0, 200),
              st.lists(st.integers(0, 255), max_size=8, unique=True)),
    max_size=12, unique_by=lambda t: t[0]))
def test_formats_agree_property(tmp_path, records):
    """All three formats store exactly the same adjacency structure."""
    records = sorted((u, np.array(sorted(vs), dtype=np.int64))
                     for u, vs in records)
    results = {}
    for name in available_formats():
        fmt = get_format(name)
        path = tmp_path / f"p-{name}"
        fmt.write(path, records, 256)
        results[name] = fmt.read_edges(path).tolist()
    assert results["tsv"] == results["adj6"] == results["csr6"]
