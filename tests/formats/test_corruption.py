"""Failure injection: corrupted, truncated, and inconsistent graph files.

Readers must fail loudly (FormatError) on damaged inputs rather than
silently returning wrong graphs — the failure mode that matters for a
generator whose outputs feed benchmarks.
"""

import struct

import numpy as np
import pytest

from repro import RecursiveVectorGenerator
from repro.errors import FormatError
from repro.formats import Adj6Format, Csr6Format, TsvFormat, get_format


@pytest.fixture()
def written(tmp_path):
    """One valid file per format."""
    g = RecursiveVectorGenerator(8, 8, seed=1)
    paths = {}
    for name in ("tsv", "adj6", "csr6"):
        path = tmp_path / f"g.{name}"
        get_format(name).write(path, g.iter_adjacency(), 256)
        paths[name] = path
    return paths


class TestTruncation:
    @pytest.mark.parametrize("fmt_name,cut", [("adj6", 1), ("adj6", 7),
                                              ("csr6", 3), ("csr6", 11)])
    def test_truncated_binary_detected(self, written, fmt_name, cut):
        path = written[fmt_name]
        data = path.read_bytes()
        path.write_bytes(data[:-cut])
        with pytest.raises(FormatError):
            get_format(fmt_name).read_edges(path)

    def test_truncated_tsv_line_detected(self, written):
        path = written["tsv"]
        text = path.read_text()
        # Cut mid-line: the partial last line is malformed.
        path.write_text(text[:-4])
        with pytest.raises(FormatError):
            get_format("tsv").read_edges(path)

    def test_empty_binary_file_is_empty_graph(self, tmp_path):
        # Zero bytes is a legal (empty) ADJ6 file, not corruption.
        path = tmp_path / "empty.adj6"
        path.write_bytes(b"")
        assert Adj6Format().read_edges(path).shape[0] == 0


class TestGarbage:
    def test_random_bytes_csr6(self, tmp_path):
        path = tmp_path / "junk.csr6"
        path.write_bytes(np.random.default_rng(0).bytes(200))
        with pytest.raises(FormatError):
            Csr6Format().read_csr(path)

    def test_wrong_magic_csr6(self, written):
        path = written["csr6"]
        data = bytearray(path.read_bytes())
        data[0:4] = b"XXXX"
        path.write_bytes(bytes(data))
        with pytest.raises(FormatError):
            Csr6Format().read_csr(path)

    def test_text_in_binary_adj6(self, tmp_path):
        path = tmp_path / "text.adj6"
        path.write_text("0\t1\n0\t2\n")
        # Interpreted as binary records this is a truncated/garbage file;
        # it must raise, not return nonsense silently.
        with pytest.raises(FormatError):
            list(Adj6Format().iter_adjacency(path))

    def test_non_numeric_tsv(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("zero\tone\n")
        with pytest.raises(FormatError):
            TsvFormat().read_edges(path)

    def test_too_many_columns_tsv(self, tmp_path):
        path = tmp_path / "cols.tsv"
        path.write_text("1\t2\t3\n")
        with pytest.raises(FormatError):
            TsvFormat().read_edges(path)


class TestInconsistency:
    def test_csr6_indptr_vs_edge_count(self, written):
        """Header edge count inconsistent with indptr is rejected."""
        path = written["csr6"]
        data = bytearray(path.read_bytes())
        # Patch the header's num_edges down by one.
        magic, n, m = struct.unpack_from("<4sQQ", data, 0)
        struct.pack_into("<4sQQ", data, 0, magic, n, m - 1)
        path.write_bytes(bytes(data))
        with pytest.raises(FormatError):
            Csr6Format().read_csr(path)

    def test_adj6_degree_field_beyond_eof(self, tmp_path):
        """A record claiming more neighbours than the file holds."""
        path = tmp_path / "deg.adj6"
        from repro.formats.base import encode_id6
        with open(path, "wb") as f:
            f.write(encode_id6(np.array([5], dtype=np.int64)))
            f.write(struct.pack("<I", 100))      # degree 100 ...
            f.write(encode_id6(np.array([1, 2], dtype=np.int64)))  # 2 ids
        with pytest.raises(FormatError):
            list(Adj6Format().iter_adjacency(path))
