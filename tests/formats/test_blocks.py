"""The block-streaming output path: vectorized encoders, the write
pipeline, and the context-manager / range-check satellites.

The load-bearing property is byte-identity: for every format, feeding
whole :class:`AdjacencyBlock`s through ``add_block`` (pipeline on or
off) must produce exactly the bytes the per-vertex ``add`` fallback
produces — including degree-0 vertices, empty blocks, partial first/last
blocks, and the AVS-I flipped direction.
"""

import numpy as np
import pytest

from repro import RecursiveVectorGenerator
from repro.core.generator import AdjacencyBlock
from repro.errors import FormatError
from repro.formats import (NO_PIPELINE_ENV, ThreadedSink, WriteResult,
                           block_from_edges, blocks_from_adjacency,
                           get_format, id6_byte_view, write_many,
                           write_many_blocks)

FORMATS = ["adj6", "csr6", "tsv"]


def make_generator(scale=10, **kwargs):
    kwargs.setdefault("seed", 5)
    kwargs.setdefault("block_size", 128)
    return RecursiveVectorGenerator(scale, 8, **kwargs)


def per_vertex_bytes(fmt_name, path, blocks, num_vertices):
    """Reference output: the per-vertex ``add`` fallback."""
    writer = get_format(fmt_name).open_writer(path, num_vertices)
    with writer:
        for block in blocks:
            for u, vs in block.iter_adjacency():
                writer.add(u, vs)
    return path.read_bytes()


def block_bytes(fmt_name, path, blocks, num_vertices):
    writer = get_format(fmt_name).open_writer(path, num_vertices)
    with writer:
        for block in blocks:
            writer.add_block(block)
    return path.read_bytes()


def hand_block(sources, lists):
    counts = [len(vs) for vs in lists]
    offsets = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)
    dests = (np.concatenate([np.asarray(vs, dtype=np.int64)
                             for vs in lists])
             if any(counts) else np.empty(0, dtype=np.int64))
    return AdjacencyBlock(np.array(sources, dtype=np.int64), offsets,
                          dests)


class TestByteIdentity:
    @pytest.mark.parametrize("fmt_name", FORMATS)
    def test_generated_blocks(self, fmt_name, tmp_path):
        gen = make_generator()
        blocks = list(gen.iter_blocks())
        expected = per_vertex_bytes(fmt_name, tmp_path / "pv", blocks,
                                    gen.num_vertices)
        assert block_bytes(fmt_name, tmp_path / "blk", blocks,
                           gen.num_vertices) == expected

    @pytest.mark.parametrize("fmt_name", FORMATS)
    def test_degree_zero_vertices(self, fmt_name, tmp_path):
        blocks = [hand_block([0, 1, 2, 3, 4],
                             [[1, 2], [], [0, 3, 4], [], []]),
                  hand_block([5, 6, 7], [[], [0], []])]
        expected = per_vertex_bytes(fmt_name, tmp_path / "pv", blocks, 8)
        assert block_bytes(fmt_name, tmp_path / "blk", blocks, 8) \
            == expected

    @pytest.mark.parametrize("fmt_name", FORMATS)
    def test_empty_blocks(self, fmt_name, tmp_path):
        empty = hand_block([], [])
        blocks = [empty, hand_block([2], [[0, 1]]), empty]
        expected = per_vertex_bytes(fmt_name, tmp_path / "pv", blocks, 4)
        assert block_bytes(fmt_name, tmp_path / "blk", blocks, 4) \
            == expected

    @pytest.mark.parametrize("fmt_name", FORMATS)
    def test_all_degree_zero(self, fmt_name, tmp_path):
        blocks = [hand_block([0, 1, 2], [[], [], []])]
        expected = per_vertex_bytes(fmt_name, tmp_path / "pv", blocks, 3)
        assert block_bytes(fmt_name, tmp_path / "blk", blocks, 3) \
            == expected

    @pytest.mark.parametrize("fmt_name", FORMATS)
    def test_partial_first_and_last_blocks(self, fmt_name, tmp_path):
        """iter_blocks(start, stop) slices mid-block on both ends."""
        gen = make_generator()
        start, stop = 37, gen.num_vertices - 41
        blocks = list(gen.iter_blocks(start, stop))
        expected = per_vertex_bytes(fmt_name, tmp_path / "pv", blocks,
                                    gen.num_vertices)
        assert block_bytes(fmt_name, tmp_path / "blk", blocks,
                           gen.num_vertices) == expected

    @pytest.mark.parametrize("fmt_name", FORMATS)
    def test_avs_in_direction(self, fmt_name, tmp_path):
        gen = make_generator(direction="in")
        blocks = list(gen.iter_blocks())
        expected = per_vertex_bytes(fmt_name, tmp_path / "pv", blocks,
                                    gen.num_vertices)
        assert block_bytes(fmt_name, tmp_path / "blk", blocks,
                           gen.num_vertices) == expected

    @pytest.mark.parametrize("fmt_name", FORMATS)
    def test_pipeline_on_off_equivalence(self, fmt_name, tmp_path,
                                         monkeypatch):
        gen = make_generator()
        blocks = list(gen.iter_blocks())
        monkeypatch.delenv(NO_PIPELINE_ENV, raising=False)
        piped = block_bytes(fmt_name, tmp_path / "on", blocks,
                            gen.num_vertices)
        monkeypatch.setenv(NO_PIPELINE_ENV, "1")
        direct = block_bytes(fmt_name, tmp_path / "off", blocks,
                             gen.num_vertices)
        assert piped == direct

    def test_write_pairs_matches_blocks(self, tmp_path):
        """GraphFormat.write (the pair surface) batches into blocks and
        stays byte-identical to the native block path."""
        gen = make_generator()
        fmt = get_format("adj6")
        fmt.write(tmp_path / "pairs", gen.iter_adjacency(),
                  gen.num_vertices)
        fmt.write_blocks(tmp_path / "blocks", gen.iter_blocks(),
                         gen.num_vertices)
        assert (tmp_path / "pairs").read_bytes() == \
            (tmp_path / "blocks").read_bytes()

    def test_write_many_blocks_matches_pairs(self, tmp_path):
        gen = make_generator()
        write_many_blocks(gen.iter_blocks(), gen.num_vertices,
                          {n: tmp_path / f"b.{n}" for n in FORMATS})
        write_many(gen.iter_adjacency(), gen.num_vertices,
                   {n: tmp_path / f"p.{n}" for n in FORMATS})
        for n in FORMATS:
            assert (tmp_path / f"b.{n}").read_bytes() == \
                (tmp_path / f"p.{n}").read_bytes()


class TestBlockHelpers:
    def test_block_from_edges_groups_sources(self):
        edges = np.array([[0, 1], [0, 2], [2, 0], [5, 3]], dtype=np.int64)
        block = block_from_edges(edges)
        assert block.sources.tolist() == [0, 2, 5]
        assert block.offsets.tolist() == [0, 2, 3, 4]
        assert block.destinations.tolist() == [1, 2, 0, 3]

    def test_block_from_edges_empty(self):
        block = block_from_edges(np.empty((0, 2), dtype=np.int64))
        assert block.sources.size == 0
        assert block.num_edges == 0

    def test_blocks_from_adjacency_batches(self):
        pairs = [(u, np.array([u + 1], dtype=np.int64))
                 for u in range(10)]
        blocks = list(blocks_from_adjacency(iter(pairs), batch_size=4))
        assert [b.sources.size for b in blocks] == [4, 4, 2]
        assert sum(b.num_edges for b in blocks) == 10

    def test_id6_byte_view_rejects_out_of_range(self):
        with pytest.raises(FormatError):
            id6_byte_view(np.array([1 << 48], dtype=np.int64))
        with pytest.raises(FormatError):
            id6_byte_view(np.array([-1], dtype=np.int64))


class TestWriterContract:
    def test_exit_records_result_on_normal_path(self, tmp_path):
        """Satellite: the WriteResult of a ``with`` block is never lost."""
        writer = get_format("adj6").open_writer(tmp_path / "g.adj6", 4)
        with writer:
            writer.add(0, np.array([1, 2], dtype=np.int64))
        assert isinstance(writer.result, WriteResult)
        assert writer.result.num_edges == 2
        assert writer.result.bytes_written == \
            (tmp_path / "g.adj6").stat().st_size

    @pytest.mark.parametrize("fmt_name", FORMATS)
    def test_close_idempotent(self, fmt_name, tmp_path):
        writer = get_format(fmt_name).open_writer(tmp_path / "g", 4)
        writer.add(1, np.array([0, 2], dtype=np.int64))
        first = writer.close()
        assert writer.close() is first

    def test_exit_preserves_inflight_exception(self, tmp_path):
        with pytest.raises(RuntimeError, match="boom"):
            with get_format("adj6").open_writer(tmp_path / "g", 4) as w:
                w.add(0, np.array([1], dtype=np.int64))
                raise RuntimeError("boom")

    def test_throughput_fields_populated(self, tmp_path):
        gen = make_generator()
        result = get_format("adj6").write_blocks(
            tmp_path / "g.adj6", gen.iter_blocks(), gen.num_vertices)
        assert result.elapsed_seconds > 0
        assert result.edges_per_second > 0
        assert result.bytes_per_second > 0
        assert result.encode_seconds >= 0

    def test_untimed_result_reports_zero_throughput(self, tmp_path):
        result = WriteResult(tmp_path / "x", 1, 10, 100)
        assert result.edges_per_second == 0.0
        assert result.bytes_per_second == 0.0


class TestDegreeRange:
    def test_add_rejects_degree_over_uint32(self, tmp_path):
        writer = get_format("adj6").open_writer(tmp_path / "g", 4)
        huge = np.broadcast_to(np.int64(0), ((1 << 32) + 1,))
        with pytest.raises(FormatError, match="degree"):
            writer.add(0, huge)
        writer.close()

    def test_add_block_rejects_degree_over_uint32(self, tmp_path):
        n = (1 << 32) + 1
        block = AdjacencyBlock(
            np.array([3], dtype=np.int64),
            np.array([0, n], dtype=np.int64),
            np.broadcast_to(np.int64(0), (n,)))
        writer = get_format("adj6").open_writer(tmp_path / "g", 4)
        with pytest.raises(FormatError, match="vertex 3"):
            writer.add_block(block)
        writer.close()


class TestCsr6BlockValidation:
    def test_rejects_unsorted_row_inside_block(self, tmp_path):
        block = hand_block([0, 1], [[2, 1], [0]])
        writer = get_format("csr6").open_writer(tmp_path / "g", 4)
        with pytest.raises(FormatError, match="vertex 0"):
            writer.add_block(block)
        writer.close()

    def test_allows_descent_at_row_boundary(self, tmp_path):
        # 0 -> [5, 7], 1 -> [2]: the 7 -> 2 drop is a legal boundary.
        block = hand_block([0, 1], [[5, 7], [2]])
        writer = get_format("csr6").open_writer(tmp_path / "g.csr6", 8)
        writer.add_block(block)
        writer.close()
        indptr, indices = get_format("csr6").read_csr(tmp_path / "g.csr6")
        assert indices.tolist() == [5, 7, 2]

    def test_rejects_nonincreasing_sources_across_blocks(self, tmp_path):
        writer = get_format("csr6").open_writer(tmp_path / "g", 8)
        writer.add_block(hand_block([4], [[1]]))
        with pytest.raises(FormatError, match="increasing"):
            writer.add_block(hand_block([4], [[2]]))
        writer.close()

    def test_rejects_out_of_range_vertex(self, tmp_path):
        writer = get_format("csr6").open_writer(tmp_path / "g", 4)
        with pytest.raises(FormatError, match="range"):
            writer.add_block(hand_block([9], [[0]]))
        writer.close()

    def test_leading_degree_zero_rows(self, tmp_path):
        # Regression: boundary mask must not wrap around offsets[1:]-1
        # when the first rows are empty.
        block = hand_block([0, 1, 2], [[], [], [3, 1]])
        writer = get_format("csr6").open_writer(tmp_path / "g", 4)
        with pytest.raises(FormatError, match="vertex 2"):
            writer.add_block(block)
        writer.close()


class TestThreadedSink:
    def test_write_error_reraised_to_producer(self, tmp_path):
        path = tmp_path / "f.bin"
        handle = open(path, "wb")
        sink = ThreadedSink(handle, depth=2)
        handle.close()                      # next write hits a dead file
        with pytest.raises(ValueError):
            for _ in range(100):            # must not deadlock
                sink.write(b"x")
                sink.drain()
        sink.close()

    def test_write_after_close_rejected(self, tmp_path):
        with open(tmp_path / "f.bin", "wb") as handle:
            sink = ThreadedSink(handle, depth=2)
            sink.close()
            with pytest.raises(ValueError):
                sink.write(b"x")

    def test_preserves_order(self, tmp_path):
        path = tmp_path / "f.bin"
        with open(path, "wb") as handle:
            sink = ThreadedSink(handle, depth=3)
            for i in range(50):
                sink.write(bytes([i]))
            sink.close()
        assert path.read_bytes() == bytes(range(50))
