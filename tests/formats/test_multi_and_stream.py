"""Tests for stream writers and the multi-format tee."""

import numpy as np
import pytest

from repro import RecursiveVectorGenerator
from repro.errors import FormatError
from repro.formats import get_format, write_many


@pytest.fixture()
def graph():
    g = RecursiveVectorGenerator(9, 8, seed=5)
    return g, g.edges()


class TestStreamWriters:
    @pytest.mark.parametrize("fmt_name", ["tsv", "adj6", "csr6"])
    def test_incremental_equals_batch(self, fmt_name, graph, tmp_path):
        g, edges = graph
        fmt = get_format(fmt_name)
        batch_path = tmp_path / f"batch.{fmt_name}"
        inc_path = tmp_path / f"inc.{fmt_name}"
        fmt.write(batch_path, g.iter_adjacency(), g.num_vertices)
        writer = fmt.open_writer(inc_path, g.num_vertices)
        for u, vs in g.iter_adjacency():
            writer.add(u, vs)
        result = writer.close()
        assert result.num_edges == edges.shape[0]
        assert batch_path.read_bytes() == inc_path.read_bytes()

    @pytest.mark.parametrize("fmt_name", ["tsv", "adj6", "csr6"])
    def test_context_manager(self, fmt_name, graph, tmp_path):
        g, edges = graph
        fmt = get_format(fmt_name)
        path = tmp_path / f"ctx.{fmt_name}"
        with fmt.open_writer(path, g.num_vertices) as writer:
            for u, vs in g.iter_adjacency():
                writer.add(u, vs)
        back = fmt.read_edges(path)
        np.testing.assert_array_equal(back, edges)

    def test_csr_stream_rejects_disorder_immediately(self, tmp_path):
        fmt = get_format("csr6")
        writer = fmt.open_writer(tmp_path / "bad.csr6", 8)
        writer.add(3, np.array([1]))
        with pytest.raises(FormatError):
            writer.add(1, np.array([2]))
        writer.close()


class TestWriteMany:
    def test_tee_all_formats(self, graph, tmp_path):
        g, edges = graph
        outputs = {name: tmp_path / f"tee.{name}"
                   for name in ("tsv", "adj6", "csr6")}
        results = write_many(g.iter_adjacency(), g.num_vertices, outputs)
        assert set(results) == set(outputs)
        for name, result in results.items():
            assert result.num_edges == edges.shape[0]
            back = get_format(name).read_edges(result.path)
            np.testing.assert_array_equal(back, edges)

    def test_tee_matches_individual_writes(self, graph, tmp_path):
        g, _ = graph
        outputs = {"adj6": tmp_path / "tee.adj6"}
        write_many(g.iter_adjacency(), g.num_vertices, outputs)
        single = tmp_path / "single.adj6"
        get_format("adj6").write(single, g.iter_adjacency(),
                                 g.num_vertices)
        assert single.read_bytes() == outputs["adj6"].read_bytes()

    def test_rejects_empty_outputs(self, graph):
        g, _ = graph
        with pytest.raises(ValueError):
            write_many(g.iter_adjacency(), g.num_vertices, {})

    def test_stream_consumed_once(self, tmp_path):
        """The adjacency iterable is pulled exactly once even with three
        writers attached."""
        pulls = []

        def stream():
            for u in range(4):
                pulls.append(u)
                yield u, np.array([u + 1]) % 4

        outputs = {name: tmp_path / f"once.{name}"
                   for name in ("tsv", "adj6")}
        write_many(stream(), 8, outputs)
        assert pulls == [0, 1, 2, 3]
