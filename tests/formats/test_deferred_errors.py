"""Deferred pipeline I/O errors: an exception raised by the background
writer thread must re-raise (with its original type) out of the format
writer's ``close()``, the file handle must be released anyway, and the
distributed worker must not leave a ``.partial`` temporary behind."""

from __future__ import annotations

import numpy as np
import pytest

from repro import RecursiveVectorGenerator
from repro.dist.runner import _worker_chunk
from repro.formats import ThreadedSink, get_format
from repro.formats.base import (_REGISTRY, GraphFormat, StreamWriter,
                                register_format)


class FlakyFile:
    """Delegating file wrapper whose ``write`` fails after N calls."""

    def __init__(self, inner, fail_after: int = 0) -> None:
        self._inner = inner
        self._fail_after = fail_after
        self._writes = 0

    def write(self, data):
        self._writes += 1
        if self._writes > self._fail_after:
            raise OSError("disk full (injected)")
        return self._inner.write(data)

    def __getattr__(self, name):
        return getattr(self._inner, name)


def make_block_stream(scale=8):
    gen = RecursiveVectorGenerator(scale, 4, seed=2, block_size=64)
    return gen.iter_blocks(), gen.num_vertices


def inject_flaky_sink(writer, fail_after=0):
    """Swap the writer's sink for one over a failing file.  The real
    handle stays what ``_finalize`` must close."""
    writer._sink.close()
    real = writer._file
    writer._file = FlakyFile(real, fail_after)
    writer._sink = ThreadedSink(writer._file, depth=1)
    return real


@pytest.mark.parametrize("fmt_name", ["adj6", "tsv", "csr6"])
def test_deferred_error_reraises_on_close(fmt_name, tmp_path):
    blocks, num_vertices = make_block_stream()
    writer = get_format(fmt_name).open_writer(tmp_path / "g.out",
                                              num_vertices)
    real = inject_flaky_sink(writer)
    writer.add_block(next(iter(blocks)))
    with pytest.raises(OSError, match="injected"):
        writer.close()
    assert real.closed, "file handle leaked after deferred error"
    assert writer.result is None


@pytest.mark.parametrize("fmt_name", ["adj6", "tsv", "csr6"])
def test_deferred_error_reraises_mid_stream(fmt_name, tmp_path):
    # With more blocks than queue depth the error surfaces on a later
    # write() instead of close(); either way it must not deadlock and
    # must keep its original type.
    blocks, num_vertices = make_block_stream()
    writer = get_format(fmt_name).open_writer(tmp_path / "g.out",
                                              num_vertices)
    real = inject_flaky_sink(writer)
    with pytest.raises(OSError, match="injected"):
        for block in blocks:
            writer.add_block(block)
        writer.close()
    writer._sink.close()
    real.close()


class _BoomWriter(StreamWriter):
    def __init__(self, path, num_vertices):
        super().__init__(path, num_vertices)
        self.path.write_bytes(b"partial bytes on disk")

    def add(self, vertex, neighbours):
        raise OSError("boom (injected)")

    def add_block(self, block):
        raise OSError("boom (injected)")

    def _finalize(self):
        raise OSError("boom (injected)")


class _BoomFormat(GraphFormat):
    name = "boomfmt"

    def open_writer(self, path, num_vertices):
        return _BoomWriter(path, num_vertices)

    def iter_adjacency(self, path):
        return iter(())


@pytest.fixture
def boom_format():
    register_format(_BoomFormat())
    yield "boomfmt"
    _REGISTRY.pop("boomfmt", None)


def test_failed_worker_chunk_leaves_no_partial(tmp_path, boom_format):
    final = tmp_path / "chunk-000000.adj6"
    args = ("chunk-000000.adj6", 0, 16,
            dict(scale=6, edge_factor=2, seed=1), boom_format, str(final))
    with pytest.raises(OSError, match="injected"):
        _worker_chunk(args)
    assert not final.exists(), "failed chunk must not be adopted"
    assert list(tmp_path.glob("*.partial*")) == [], \
        "failed chunk left a .partial temporary"


def test_successful_worker_chunk_cleans_temporaries(tmp_path):
    final = tmp_path / "chunk-000000.adj6"
    args = ("chunk-000000.adj6", 0, 16,
            dict(scale=6, edge_factor=2, seed=1), "adj6", str(final))
    result = _worker_chunk(args)
    assert final.exists()
    assert list(tmp_path.glob("*.partial*")) == []
    assert result.num_edges > 0
    edges = get_format("adj6").read_edges(final)
    assert np.all(edges[:, 0] < 16)
