"""Golden known-seed digests: freeze the RNG key shapes and the output
bytes so any change to the derivation scheme, the sampling order, or an
encoder is caught as an explicit golden-value break, not a silent
different-graph.

Referenced by the ``repro.core.rng`` module docstring: the two
derivation families (``stream`` label paths vs ``spawn_streams`` spawn
keys) are disjoint by construction, and these digests pin both schemes.

If a test here fails, the generator output changed for every user.
Only update the constants for an *intentional*, release-noted break of
seed stability.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro import RecursiveVectorGenerator
from repro.core.rng import derive_seed, spawn_streams, stream
from repro.formats import get_format
from repro.models import ALL_MODELS


def draw_digest(gen, n=8):
    """Digest of the first ``n`` uint64 draws — fingerprints the stream."""
    values = gen.integers(0, 1 << 63, size=n)
    return hashlib.sha256(np.ascontiguousarray(values).tobytes()) \
        .hexdigest()[:16]


# -- key-shape freeze --------------------------------------------------

STREAM_DIGESTS = {
    (7,): "f2aa239e8ccb3760",
    (7, 0): "f2aa239e8ccb3760",   # see test_root_equals_label_zero
    (7, 0, 3): "2ba02186d1363e18",
}

SPAWN_DIGESTS = ["0538c293b4a73484", "a241f641f4331ca8",
                 "6a4263f07e4bdd8e"]

DERIVED_SEEDS = {(7, 1): 3317731564112288844,
                 (7, 2): 9139555415570476218}


def test_stream_digests_frozen():
    for (seed, *labels), expected in STREAM_DIGESTS.items():
        assert draw_digest(stream(seed, *labels)) == expected, \
            f"stream({seed}, {labels}) drifted"


def test_spawn_digests_frozen():
    assert [draw_digest(g) for g in spawn_streams(7, 3)] == SPAWN_DIGESTS


def test_derive_seed_frozen():
    for (seed, label), expected in DERIVED_SEEDS.items():
        assert derive_seed(seed, label) == expected


def test_spawn_and_stream_families_are_disjoint():
    # spawn_streams(seed, n)[i] must never equal stream(seed, i): the
    # spawn_key shape differs from the entropy-list shape.  Pinned here
    # because silently unifying them would collide worker streams with
    # scope streams.
    spawned = [draw_digest(g) for g in spawn_streams(7, 3)]
    labelled = [draw_digest(stream(7, i)) for i in range(3)]
    assert not set(spawned) & set(labelled)


def test_root_equals_label_zero():
    # Known numpy SeedSequence property: trailing zero entropy words
    # are absorbed, so ``stream(seed)`` IS ``stream(seed, 0)``.  The
    # library's own label tags therefore all start at 1 (models) or
    # 101+ (core generator).  Frozen so a numpy behaviour change — or a
    # new tag 0 — is noticed.
    assert draw_digest(stream(7)) == draw_digest(stream(7, 0))


# -- output-byte freeze ------------------------------------------------

# scale 8, edge factor 4, seed 42, defaults otherwise.
OUTPUT_DIGESTS = {
    "adj6": "94edec94a19eb79196b23943d46d4ddf9130f16e109b6e253f230e7f974574bc",
    "tsv": "8376072faa2479a9363ad2bb54ed2639694966b4070ad931a39c6db6ac12faff",
    "csr6": "14de09fd87a7e50e2e960fa1c3667ff31b2e45d7698ae5680e840d6236b5e2b4",
}

NOISE_ADJ6_DIGEST = \
    "ee58f18fb6bd9bfabc1a0660050fe43a1fb549d452d2bc990afd5748db741518"

# Per-sampler adj6 digests at the same configuration.  Each backend is
# deterministic per (params, seed), but the backends are intentionally
# NOT byte-identical to one another: they consume their edge streams in
# different shapes (one translation uniform vs. per-level Bernoullis
# vs. slot/coin/fill batches).  ``recvec`` must stay the default.
SAMPLER_ADJ6_DIGESTS = {
    "recvec":
        "94edec94a19eb79196b23943d46d4ddf9130f16e109b6e253f230e7f974574bc",
    "bitwise":
        "54b46034484b9541e723fa0413274458d5af5835792d7d2c239ac6c87635c747",
    "alias":
        "d3b53a944821009b1ac2ef838196d5012426832426412c0a3bedfdb6090ffd2c",
}

# bundle_depth is part of the alias backend's determinism key: a
# different depth is a different (equally valid) graph.
ALIAS_DEPTH4_ADJ6_DIGEST = \
    "c598084bdfa2d730d0e943121c49d30af2f0f215f43a474a9132384a914e5787"

# Edge-array digest of the alias backend, checked both sequentially and
# through the distributed runner (workers must honor the sampler).
ALIAS_EDGE_DIGEST = "84980a12758b04d3"


def write_digest(tmp_path, fmt_name, **kwargs):
    kwargs.setdefault("seed", 42)
    gen = RecursiveVectorGenerator(8, 4, **kwargs)
    path = tmp_path / f"golden.{fmt_name}"
    get_format(fmt_name).write_blocks(path, gen.iter_blocks(),
                                      gen.num_vertices)
    return hashlib.sha256(path.read_bytes()).hexdigest()


def test_output_digests_frozen(tmp_path):
    for fmt_name, expected in OUTPUT_DIGESTS.items():
        assert write_digest(tmp_path, fmt_name) == expected, \
            f"{fmt_name} output drifted for (scale=8, ef=4, seed=42)"


def test_noise_output_digest_frozen(tmp_path):
    assert write_digest(tmp_path, "adj6", noise=0.1) == NOISE_ADJ6_DIGEST


def test_sampler_digests_frozen(tmp_path):
    for sampler, expected in SAMPLER_ADJ6_DIGESTS.items():
        assert write_digest(tmp_path, "adj6", sampler=sampler) == \
            expected, f"sampler {sampler!r} output drifted"


def test_sampler_digests_are_pairwise_distinct():
    assert len(set(SAMPLER_ADJ6_DIGESTS.values())) == \
        len(SAMPLER_ADJ6_DIGESTS)


def test_default_engine_is_the_recvec_sampler():
    assert SAMPLER_ADJ6_DIGESTS["recvec"] == OUTPUT_DIGESTS["adj6"]


def test_alias_bundle_depth_digest_frozen(tmp_path):
    assert write_digest(tmp_path, "adj6", sampler="alias",
                        bundle_depth=4) == ALIAS_DEPTH4_ADJ6_DIGEST


def test_alias_digest_stable_through_distributed_runner(tmp_path):
    """Workers rebuild the generator from the picklable recipe; the
    sampler and bundle depth must survive the round trip and reproduce
    the sequential bytes exactly."""
    from repro.dist.runner import LocalCluster
    gen = RecursiveVectorGenerator(8, 4, seed=42, sampler="alias")
    cluster = LocalCluster(num_workers=3)
    res = cluster.generate_to_files(gen, tmp_path / "parts", "adj6",
                                    processes=2)
    dist_edges = cluster.read_all_edges(res, "adj6")
    assert edge_digest(dist_edges) == ALIAS_EDGE_DIGEST
    seq = RecursiveVectorGenerator(8, 4, seed=42, sampler="alias")
    assert edge_digest(seq.edges()) == ALIAS_EDGE_DIGEST


def test_avs_in_matches_avs_out_for_symmetric_matrix(tmp_path):
    # The Graph500 matrix has b == c, so its transpose is itself and
    # AVS-I must reproduce AVS-O byte for byte.  An asymmetry sneaking
    # into the direction flip would break this first.
    assert write_digest(tmp_path, "adj6", direction="in") == \
        OUTPUT_DIGESTS["adj6"]


def test_block_size_is_part_of_the_determinism_key(tmp_path):
    # Randomness is keyed per block *index*, so the block partitioning
    # is part of the configuration: a different block_size is a
    # different (equally valid) graph.  The explicit default must match
    # the frozen digest; a non-default must not.
    assert write_digest(tmp_path, "adj6", block_size=4096) == \
        OUTPUT_DIGESTS["adj6"]
    assert write_digest(tmp_path, "adj6", block_size=64) == \
        "e005f1dfdfbc642db2ede37269e4df08c292f2e1a082de1985eaae7bb2ad3448"


# -- every registered model --------------------------------------------

# Edge-array digests at (scale=8, edge_factor=4, seed=42).  One entry
# per registry key: adding a model without freezing its digest fails
# loudly, and any sampling-order change in an existing model is an
# explicit golden break.
MODEL_DIGESTS = {
    "Barabasi-Albert": "9dbab01cb3300beb",
    "Erdos-Renyi": "ffa44e2b5f4c5dd9",
    "FastKronecker": "78c5190576b20cbc",
    "Graph500": "b6d225bd88ea14e7",
    "Kronecker-AES": "90a34ae71520d955",
    "RMAT-disk": "8ffa33b8738c239c",
    "RMAT-mem": "78c5190576b20cbc",
    "RMAT/p-disk": "53d53bf920806f18",
    "RMAT/p-mem": "53d53bf920806f18",
    "TeG": "9297d15dfcf8cab9",
    "TrillionG/seq": "b232008130f9d986",
}


def edge_digest(edges):
    arr = np.ascontiguousarray(np.asarray(edges, dtype=np.int64))
    return hashlib.sha256(arr.tobytes()).hexdigest()[:16]


def test_every_registered_model_has_a_frozen_digest():
    assert set(MODEL_DIGESTS) == set(ALL_MODELS), \
        "new model registered: freeze its golden digest here"


def test_model_edge_digests_frozen():
    for key, expected in sorted(MODEL_DIGESTS.items()):
        gen = ALL_MODELS[key](scale=8, edge_factor=4, seed=42)
        assert edge_digest(gen.generate()) == expected, \
            f"model {key!r} output drifted for (scale=8, ef=4, seed=42)"
