"""Unit tests for repro.core.probability (Proposition 1, Lemma 1)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.probability import (brute_force_cdf,
                                    brute_force_row_probability,
                                    column_probability,
                                    destination_bit_probabilities,
                                    edge_probability, expected_degree,
                                    log_row_probabilities,
                                    row_probabilities, row_probability,
                                    total_row_probability_check)
from repro.core.seed import GRAPH500, UNIFORM, SeedMatrix

# The worked example of the paper's Figure 3: K = [0.5, 0.2; 0.2, 0.1].
FIG3 = SeedMatrix.rmat(0.5, 0.2, 0.2, 0.1)


class TestEdgeProbability:
    def test_figure3_corner(self):
        # K[0,0] over 3 levels = alpha^3
        assert math.isclose(edge_probability(FIG3, 0, 0, 3), 0.5**3)

    def test_figure3_p2_to_5(self):
        # Appears in the Lemma 3 example: P(2->5) = 0.008.
        assert math.isclose(edge_probability(FIG3, 2, 5, 3), 0.008)

    def test_figure3_p2_to_1(self):
        # Also from the Lemma 3 example: P(2->1) = 0.02.
        assert math.isclose(edge_probability(FIG3, 2, 1, 3), 0.02)

    def test_matches_kronecker_power(self):
        k3 = FIG3.kronecker_power(3)
        for u in range(8):
            for v in range(8):
                assert math.isclose(edge_probability(FIG3, u, v, 3),
                                    float(k3[u, v]), rel_tol=1e-12)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            edge_probability(FIG3, 8, 0, 3)

    def test_total_mass_is_one(self):
        total = sum(edge_probability(GRAPH500, u, v, 4)
                    for u in range(16) for v in range(16))
        assert math.isclose(total, 1.0, abs_tol=1e-12)


class TestRowProbability:
    def test_figure3_p2(self):
        # The paper states P(2->) = 0.147 for Figure 3.
        assert math.isclose(row_probability(FIG3, 2, 3), 0.147)

    def test_matches_brute_force(self):
        for u in range(8):
            assert math.isclose(row_probability(FIG3, u, 3),
                                brute_force_row_probability(FIG3, u, 3),
                                rel_tol=1e-12)

    def test_vectorized_matches_scalar(self):
        us = np.arange(16, dtype=np.uint64)
        vec = row_probabilities(GRAPH500, us, 4)
        for u in range(16):
            assert math.isclose(float(vec[u]),
                                row_probability(GRAPH500, u, 4))

    def test_log_version(self):
        us = np.arange(16, dtype=np.uint64)
        logp = log_row_probabilities(GRAPH500, us, 4)
        p = row_probabilities(GRAPH500, us, 4)
        assert np.allclose(np.exp(logp), p)

    def test_rows_sum_to_one(self):
        us = np.arange(64, dtype=np.uint64)
        assert math.isclose(
            float(row_probabilities(GRAPH500, us, 6).sum()), 1.0,
            abs_tol=1e-12)
        assert math.isclose(total_row_probability_check(GRAPH500, 6), 1.0)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            row_probability(FIG3, 8, 3)

    def test_uniform_rows_equal(self):
        ps = row_probabilities(UNIFORM, np.arange(32, dtype=np.uint64), 5)
        assert np.allclose(ps, 1.0 / 32)


class TestColumnProbability:
    def test_symmetric_seed_column_equals_row(self):
        for v in range(8):
            assert math.isclose(column_probability(GRAPH500, v, 3),
                                row_probability(GRAPH500, v, 3))

    def test_matches_brute_force(self):
        k = SeedMatrix.rmat(0.5, 0.3, 0.1, 0.1)
        k3 = k.kronecker_power(3)
        for v in range(8):
            assert math.isclose(column_probability(k, v, 3),
                                float(k3[:, v].sum()), rel_tol=1e-12)


class TestBitProbabilities:
    def test_factorization_reconstructs_conditional(self):
        """P(v|u) must equal the product of per-bit Bernoulli terms —
        the correctness claim of the bitwise engine."""
        levels = 4
        u = 0b1010
        p = destination_bit_probabilities(GRAPH500, u, levels)
        p_row = row_probability(GRAPH500, u, levels)
        for v in range(16):
            direct = edge_probability(GRAPH500, u, v, levels) / p_row
            prod = 1.0
            for i in range(levels):
                bit = (v >> i) & 1
                prod *= p[i] if bit else (1.0 - p[i])
            assert math.isclose(direct, prod, rel_tol=1e-12)

    def test_bits_reflect_source(self):
        p = destination_bit_probabilities(GRAPH500, 0b0101, 4)
        p0 = 0.19 / 0.76
        p1 = 0.05 / 0.24
        assert np.allclose(p, [p1, p0, p1, p0])


class TestExpectedDegree:
    def test_hub_has_largest_expectation(self):
        # Vertex 0 (all-zero bits) has the largest row probability when
        # alpha + beta > gamma + delta.
        degs = [expected_degree(GRAPH500, u, 6, 1024) for u in range(64)]
        assert degs[0] == max(degs)

    def test_sum_matches_num_edges(self):
        total = sum(expected_degree(GRAPH500, u, 6, 1024)
                    for u in range(64))
        assert math.isclose(total, 1024, rel_tol=1e-9)


class TestBruteForceCdf:
    def test_monotone_and_complete(self):
        cdf = brute_force_cdf(FIG3, 2, 3)
        assert cdf[0] == 0.0
        assert np.all(np.diff(cdf) >= 0)
        assert math.isclose(float(cdf[-1]), 0.147)

    def test_paper_cdf_values(self):
        # F_2(4) = 0.105 and F_2(6) = 0.133 from the Lemma 4 example.
        cdf = brute_force_cdf(FIG3, 2, 3)
        assert math.isclose(float(cdf[4]), 0.105)
        assert math.isclose(float(cdf[6]), 0.133)


@settings(max_examples=30)
@given(st.integers(min_value=2, max_value=6),
       st.integers(min_value=0, max_value=2**6 - 1))
def test_lemma1_property(levels, u):
    """Lemma 1 equals brute-force summation for arbitrary (levels, u)."""
    u = u & ((1 << levels) - 1)
    assert math.isclose(row_probability(GRAPH500, u, levels),
                        brute_force_row_probability(GRAPH500, u, levels),
                        rel_tol=1e-10)
