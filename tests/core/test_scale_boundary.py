"""Regression tests for the scale-33 boundary: every ID-carrying path
must stay int64 once vertex IDs straddle 2**32.

These pin the fixes found by the RPL8xx scale-soundness analysis: a
platform-dependent default dtype (``np.arange`` without ``dtype=``) or
a narrow accumulator silently truncates IDs above 2**32 on 32-bit
builds, long before the 2**48 ID ceiling the 6-byte formats impose.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.generator import RecursiveVectorGenerator
from repro.core.nary import NAryRecursiveVectorGenerator
from repro.core.seed import SeedMatrix
from repro.formats import get_format

SCALE = 33
BLOCK = 768
# lo = STRADDLE_BLOCK * BLOCK = 2**32 - 256, hi = 2**32 + 512: the one
# block whose source range crosses the uint32 boundary.
STRADDLE_BLOCK = 2 ** 32 // BLOCK


def test_straddle_block_sources_cross_two_to_the_32():
    lo = STRADDLE_BLOCK * BLOCK
    assert lo < 2 ** 32 < lo + BLOCK


class TestGeneratorBoundary:
    @pytest.fixture(scope="class")
    def block(self):
        gen = RecursiveVectorGenerator(SCALE, num_edges=2 ** 20,
                                       block_size=BLOCK, seed=7)
        return gen.generate_block(STRADDLE_BLOCK)

    def test_id_arrays_are_int64(self, block):
        assert block.sources.dtype == np.int64
        assert block.offsets.dtype == np.int64
        assert block.destinations.dtype == np.int64

    def test_sources_straddle_the_boundary(self, block):
        assert int(block.sources.min()) < 2 ** 32
        assert int(block.sources.max()) >= 2 ** 32

    def test_edges_exist_above_two_to_the_32(self, block):
        edges = block.edge_array()
        assert edges.dtype == np.int64
        assert (edges[:, 0] >= 2 ** 32).any()
        assert int(edges.min()) >= 0
        assert int(edges.max()) < 2 ** SCALE

    def test_degrees_are_int64(self):
        gen = RecursiveVectorGenerator(SCALE, num_edges=2 ** 20,
                                       block_size=BLOCK, seed=7)
        degrees = gen.block_degrees(STRADDLE_BLOCK)
        assert degrees.dtype == np.int64


class TestNAryBoundary:
    @pytest.fixture(scope="class")
    def edges(self):
        seed = SeedMatrix(np.full((2, 2), 0.25, dtype=np.float64))
        gen = NAryRecursiveVectorGenerator(seed, depth=SCALE,
                                           num_edges=2 ** 36,
                                           block_size=BLOCK, seed=7)
        return gen.generate_block(STRADDLE_BLOCK)

    def test_edge_array_is_int64(self, edges):
        assert edges.dtype == np.int64
        assert edges.shape[1] == 2

    def test_sources_on_both_sides_of_the_boundary(self, edges):
        # the uniform seed gives every source an expected degree of 8,
        # so both halves of the straddling block emit edges
        assert (edges[:, 0] < 2 ** 32).any()
        assert (edges[:, 0] >= 2 ** 32).any()
        assert int(edges.max()) < 2 ** SCALE
        assert int(edges.min()) >= 0


class TestAdj6Boundary:
    def test_round_trip_above_two_to_the_33(self, tmp_path):
        fmt = get_format("adj6")
        base = 2 ** 33 + 5
        neighbours = np.array([7, 2 ** 32 - 1, 2 ** 32, 2 ** 33 + 1,
                               2 ** 48 - 1], dtype=np.int64)
        fmt.write(tmp_path / "b.adj6", [(base, neighbours)], 2 ** 48)
        ((vertex, back),) = list(fmt.iter_adjacency(tmp_path / "b.adj6"))
        assert vertex == base
        assert back.dtype == np.int64
        np.testing.assert_array_equal(back, neighbours)

    def test_block_encoder_matches_per_vertex_path(self, tmp_path):
        # the scatter-placed block encoder and the scalar add() path
        # must agree byte-for-byte on IDs straddling 2**32
        fmt = get_format("adj6")
        adjacency = [
            (2 ** 32 - 2, np.array([1, 2 ** 32 + 9], dtype=np.int64)),
            (2 ** 32 + 3, np.array([2 ** 33, 2 ** 33 + 1],
                                   dtype=np.int64)),
        ]
        fmt.write(tmp_path / "blocks.adj6", adjacency, 2 ** 34)
        writer = fmt.open_writer(tmp_path / "scalar.adj6", 2 ** 34)
        with writer:
            for vertex, neighbours in adjacency:
                writer.add(vertex, neighbours)
        blocks_bytes = (tmp_path / "blocks.adj6").read_bytes()
        scalar_bytes = (tmp_path / "scalar.adj6").read_bytes()
        assert blocks_bytes == scalar_bytes
