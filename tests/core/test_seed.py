"""Unit tests for repro.core.seed."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.seed import GRAPH500, UNIFORM, SeedMatrix
from repro.errors import SeedMatrixError


def positive_seed_entries():
    """Four positive weights; normalized to a valid seed in the test."""
    weight = st.floats(min_value=0.01, max_value=1.0, allow_nan=False)
    return st.tuples(weight, weight, weight, weight)


def normalized(w):
    total = sum(w)
    return tuple(x / total for x in w)


class TestConstruction:
    def test_graph500_values(self):
        assert GRAPH500.as_tuple() == (0.57, 0.19, 0.19, 0.05)

    def test_uniform(self):
        assert UNIFORM.as_tuple() == (0.25, 0.25, 0.25, 0.25)

    def test_rejects_bad_sum(self):
        with pytest.raises(SeedMatrixError):
            SeedMatrix.rmat(0.5, 0.5, 0.5, 0.5)

    def test_rejects_negative(self):
        with pytest.raises(SeedMatrixError):
            SeedMatrix.rmat(-0.1, 0.5, 0.5, 0.1)

    def test_rejects_non_square(self):
        with pytest.raises(SeedMatrixError):
            SeedMatrix(np.array([[0.5, 0.25, 0.25]]))

    def test_rejects_1x1(self):
        with pytest.raises(SeedMatrixError):
            SeedMatrix(np.array([[1.0]]))

    def test_nxn_accepted(self):
        k = SeedMatrix(np.full((3, 3), 1.0 / 9))
        assert k.order == 3
        assert not k.is_rmat

    def test_nxn_rejects_rmat_accessors(self):
        k = SeedMatrix(np.full((3, 3), 1.0 / 9))
        with pytest.raises(SeedMatrixError):
            _ = k.alpha

    def test_entries_read_only(self):
        with pytest.raises(ValueError):
            GRAPH500.entries[0, 0] = 0.9

    def test_near_one_sum_accepted_verbatim(self):
        # Entries within tolerance of 1.0 are stored as given (no
        # renormalization noise) — the paper's worked examples depend on it.
        k = SeedMatrix.rmat(0.3, 0.3, 0.2, 0.2 + 1e-12)
        assert float(k.entries[1, 1]) == 0.2 + 1e-12


class TestDerived:
    def test_row_sums(self):
        assert np.allclose(GRAPH500.row_sums(), [0.76, 0.24])

    def test_col_sums(self):
        assert np.allclose(GRAPH500.col_sums(), [0.76, 0.24])

    def test_kronecker_power_shape(self):
        k3 = GRAPH500.kronecker_power(3)
        assert k3.shape == (8, 8)
        assert math.isclose(float(k3.sum()), 1.0, abs_tol=1e-12)

    def test_kronecker_power_entry(self):
        # K^(2)[0,0] = alpha^2
        k2 = GRAPH500.kronecker_power(2)
        assert math.isclose(float(k2[0, 0]), 0.57**2)

    def test_kronecker_power_rejects_zero(self):
        with pytest.raises(ValueError):
            GRAPH500.kronecker_power(0)

    def test_out_zipf_slope_graph500(self):
        # log2(0.24) - log2(0.76) = -1.662... (paper Section 6.1)
        assert math.isclose(GRAPH500.out_zipf_slope(), -1.6630,
                            abs_tol=5e-3)

    def test_in_equals_out_for_symmetric_seed(self):
        assert math.isclose(GRAPH500.in_zipf_slope(),
                            GRAPH500.out_zipf_slope())

    def test_asymmetric_slopes_differ(self):
        k = SeedMatrix.rmat(0.5, 0.3, 0.1, 0.1)
        assert k.out_zipf_slope() != k.in_zipf_slope()

    def test_expected_ones_fraction(self):
        assert math.isclose(GRAPH500.expected_ones_fraction(), 0.24)
        assert math.isclose(UNIFORM.expected_ones_fraction(), 0.5)

    def test_lemma5_estimate_in_same_ballpark(self):
        # The printed formula, the exact marginal, and the paper's quoted
        # constant all say "recursions shrink ~4-5x" for Graph500.
        assert 0.15 < GRAPH500.lemma5_ones_fraction() < 0.35

    def test_transpose(self):
        k = SeedMatrix.rmat(0.5, 0.3, 0.1, 0.1)
        assert k.transpose().as_tuple() == (0.5, 0.1, 0.3, 0.1)

    def test_equality_and_hash(self):
        assert GRAPH500 == SeedMatrix.graph500()
        assert hash(GRAPH500) == hash(SeedMatrix.graph500())
        assert GRAPH500 != UNIFORM

    def test_str(self):
        assert "0.57" in str(GRAPH500)


class TestProperties:
    @given(positive_seed_entries())
    def test_normalized_always_valid(self, weights):
        a, b, c, d = normalized(weights)
        k = SeedMatrix.rmat(a, b, c, d)
        assert math.isclose(float(k.entries.sum()), 1.0, abs_tol=1e-12)

    @given(positive_seed_entries())
    def test_transpose_involution(self, weights):
        a, b, c, d = normalized(weights)
        k = SeedMatrix.rmat(a, b, c, d)
        assert k.transpose().transpose() == k

    @given(positive_seed_entries())
    def test_ones_fraction_in_unit_interval(self, weights):
        a, b, c, d = normalized(weights)
        k = SeedMatrix.rmat(a, b, c, d)
        assert 0.0 < k.expected_ones_fraction() < 1.0
