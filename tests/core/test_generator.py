"""Unit tests for repro.core.generator (the AVS engine, Algorithms 4-5)."""

import numpy as np
import pytest

from repro.core.generator import (AdjacencyBlock, IdeaToggles,
                                  RecursiveVectorGenerator)
from repro.core.seed import GRAPH500, SeedMatrix
from repro.errors import ConfigurationError


class TestConstruction:
    def test_defaults(self):
        g = RecursiveVectorGenerator(10)
        assert g.num_vertices == 1024
        assert g.num_edges == 16 * 1024
        assert g.seed_matrix == GRAPH500

    def test_explicit_num_edges(self):
        g = RecursiveVectorGenerator(10, num_edges=5000)
        assert g.num_edges == 5000

    def test_rejects_bad_scale(self):
        with pytest.raises(ConfigurationError):
            RecursiveVectorGenerator(0)
        with pytest.raises(ConfigurationError):
            RecursiveVectorGenerator(60)

    def test_rejects_bad_direction(self):
        with pytest.raises(ConfigurationError):
            RecursiveVectorGenerator(8, direction="sideways")

    def test_rejects_bad_engine(self):
        with pytest.raises(ConfigurationError):
            RecursiveVectorGenerator(8, engine="quantum")

    def test_rejects_bad_block_size(self):
        with pytest.raises(ConfigurationError):
            RecursiveVectorGenerator(8, block_size=0)


class TestEdges:
    def test_edge_count_near_target(self):
        g = RecursiveVectorGenerator(12, 16, seed=0)
        e = g.edges()
        assert abs(e.shape[0] - g.num_edges) / g.num_edges < 0.05

    def test_edges_in_range(self):
        g = RecursiveVectorGenerator(10, 8, seed=1)
        e = g.edges()
        assert e.min() >= 0
        assert e.max() < 1024

    def test_no_duplicate_edges(self):
        g = RecursiveVectorGenerator(10, 16, seed=2)
        e = g.edges()
        packed = e[:, 0] * 1024 + e[:, 1]
        assert np.unique(packed).size == e.shape[0]

    def test_duplicates_allowed_when_dedup_off(self):
        g = RecursiveVectorGenerator(6, 64, seed=3, dedup=False)
        e = g.edges()
        packed = e[:, 0] * 64 + e[:, 1]
        assert np.unique(packed).size < e.shape[0]

    def test_deterministic(self):
        e1 = RecursiveVectorGenerator(10, 16, seed=9).edges()
        e2 = RecursiveVectorGenerator(10, 16, seed=9).edges()
        np.testing.assert_array_equal(e1, e2)

    def test_seed_changes_graph(self):
        e1 = RecursiveVectorGenerator(10, 16, seed=1).edges()
        e2 = RecursiveVectorGenerator(10, 16, seed=2).edges()
        assert e1.shape != e2.shape or not np.array_equal(e1, e2)

    def test_partition_independence(self):
        """The same graph comes out regardless of how the vertex range is
        split — the property the AVS-level partitioner relies on."""
        whole = RecursiveVectorGenerator(11, 16, seed=5).edges()
        parts = [RecursiveVectorGenerator(11, 16, seed=5).edges(lo, hi)
                 for lo, hi in ((0, 100), (100, 1000), (1000, 2048))]
        np.testing.assert_array_equal(whole, np.concatenate(parts))

    def test_block_size_does_not_change_degrees_within_block_grid(self):
        # Degrees are keyed per block, so the same block_size must give the
        # same graph even via different iteration ranges (covered above);
        # different block_size is allowed to give a different (equally
        # valid) realization.
        g1 = RecursiveVectorGenerator(10, 16, seed=5, block_size=256)
        g2 = RecursiveVectorGenerator(10, 16, seed=5, block_size=256)
        np.testing.assert_array_equal(g1.edges(), g2.edges())


class TestDegrees:
    def test_degrees_match_edges(self):
        g = RecursiveVectorGenerator(10, 16, seed=7)
        degrees = g.degrees()
        e = g.edges()
        realized = np.bincount(e[:, 0], minlength=1024)
        np.testing.assert_array_equal(degrees, realized)

    def test_partial_range(self):
        g = RecursiveVectorGenerator(10, 16, seed=7)
        np.testing.assert_array_equal(g.degrees()[17:300],
                                      g.degrees(17, 300))

    def test_bad_range_rejected(self):
        g = RecursiveVectorGenerator(8)
        with pytest.raises(ValueError):
            g.degrees(10, 5)
        with pytest.raises(ValueError):
            g.degrees(0, 10**9)
        with pytest.raises(ValueError):
            g.degrees(-1, 5)

    def test_empty_ranges_return_empty_results(self):
        """[k, k) is a valid (empty) scope range, matching the format
        layer's empty-AdjacencyBlock handling — not a ValueError."""
        g = RecursiveVectorGenerator(8)
        for k in (0, 5, 255, 256):
            assert g.degrees(k, k).shape == (0,)
            assert g.edges(k, k).shape == (0, 2)
            assert list(g.iter_adjacency(k, k)) == []
            assert list(g.iter_blocks(k, k)) == []


class TestAdjacencyBlock:
    def test_iter_adjacency_consistent_with_edges(self):
        g = RecursiveVectorGenerator(9, 8, seed=11)
        pairs = [(u, tuple(vs)) for u, vs in g.iter_adjacency()]
        assert len(pairs) == 512
        edges = {(u, v) for u, vs in pairs for v in vs}
        from_edges = set(map(tuple, g.edges().tolist()))
        assert edges == from_edges

    def test_destinations_sorted_per_source(self):
        g = RecursiveVectorGenerator(9, 16, seed=12)
        for _, vs in g.iter_adjacency():
            assert np.all(np.diff(vs) > 0)

    def test_block_helpers(self):
        g = RecursiveVectorGenerator(8, 8, seed=13)
        block = g.generate_block(0)
        assert isinstance(block, AdjacencyBlock)
        assert block.num_edges == int(block.degrees.sum())
        ea = block.edge_array()
        assert ea.shape == (block.num_edges, 2)


class TestDirections:
    def test_in_direction_flips(self):
        """AVS-I on a symmetric seed yields a graph whose in-degree
        distribution matches AVS-O's out-degree distribution."""
        out_g = RecursiveVectorGenerator(10, 16, seed=21, direction="out")
        in_g = RecursiveVectorGenerator(10, 16, seed=21, direction="in")
        out_deg = np.bincount(out_g.edges()[:, 0], minlength=1024)
        in_deg = np.bincount(in_g.edges()[:, 1], minlength=1024)
        # Same seed stream and symmetric matrix: identical distributions.
        np.testing.assert_array_equal(np.sort(out_deg), np.sort(in_deg))

    def test_in_direction_edge_orientation(self):
        g = RecursiveVectorGenerator(9, 8, seed=22, direction="in")
        e = g.edges()
        assert e.min() >= 0 and e.max() < 512


class TestEnginesAndIdeas:
    def test_reference_engine_runs(self):
        g = RecursiveVectorGenerator(8, 8, seed=31, engine="reference")
        e = g.edges()
        assert e.shape[0] > 1500

    def test_idea_toggles_all_combinations(self):
        """All 8 idea combinations generate valid graphs of similar size
        (they are distributionally identical processes)."""
        sizes = []
        for i1 in (False, True):
            for i2 in (False, True):
                for i3 in (False, True):
                    g = RecursiveVectorGenerator(
                        8, 8, seed=32, engine="reference",
                        ideas=IdeaToggles(i1, i2, i3))
                    e = g.edges()
                    packed = e[:, 0] * 256 + e[:, 1]
                    assert np.unique(packed).size == e.shape[0]
                    sizes.append(e.shape[0])
        assert max(sizes) - min(sizes) < 0.2 * max(sizes)

    def test_idea1_off_rebuilds_recvec(self):
        on = RecursiveVectorGenerator(7, 8, seed=33, engine="reference",
                                      ideas=IdeaToggles(True, True, True))
        off = RecursiveVectorGenerator(7, 8, seed=33, engine="reference",
                                       ideas=IdeaToggles(False, True, True))
        on.edges()
        off.edges()
        assert off.stats.recvec_builds > 2 * on.stats.recvec_builds

    def test_idea2_off_recurses_per_level(self):
        on = RecursiveVectorGenerator(7, 8, seed=34, engine="reference",
                                      ideas=IdeaToggles(True, True, True))
        off = RecursiveVectorGenerator(7, 8, seed=34, engine="reference",
                                       ideas=IdeaToggles(True, False, True))
        on.edges()
        off.edges()
        # Idea #2 off: exactly log|V| recursions per attempted edge; on:
        # roughly 0.24 * log|V| (Graph500's 1-bit fraction).
        assert off.stats.recursion_steps > 2 * on.stats.recursion_steps

    def test_idea3_off_draws_more_randoms(self):
        on = RecursiveVectorGenerator(7, 8, seed=35, engine="reference",
                                      ideas=IdeaToggles(True, True, True))
        off = RecursiveVectorGenerator(7, 8, seed=35, engine="reference",
                                       ideas=IdeaToggles(True, True, False))
        on.edges()
        off.edges()
        assert off.stats.random_draws > on.stats.random_draws

    def test_stats_accumulate(self):
        g = RecursiveVectorGenerator(8, 16, seed=36)
        e = g.edges()
        assert g.stats.edges == e.shape[0]
        assert g.stats.max_scope_size >= 16


class TestNoiseIntegration:
    def test_noisy_generation(self):
        g = RecursiveVectorGenerator(10, 16, seed=41, noise=0.1)
        e = g.edges()
        assert abs(e.shape[0] - g.num_edges) / g.num_edges < 0.06

    def test_noise_changes_graph(self):
        e0 = RecursiveVectorGenerator(10, 16, seed=41, noise=0.0).edges()
        e1 = RecursiveVectorGenerator(10, 16, seed=41, noise=0.1).edges()
        assert e0.shape != e1.shape or not np.array_equal(e0, e1)

    def test_noise_stack_shared_across_ranges(self):
        """Two generators with the same config draw the same noisy stack,
        so split generation still composes to one coherent graph."""
        whole = RecursiveVectorGenerator(10, 16, seed=42, noise=0.1).edges()
        a = RecursiveVectorGenerator(10, 16, seed=42, noise=0.1).edges(0, 512)
        b = RecursiveVectorGenerator(10, 16, seed=42,
                                     noise=0.1).edges(512, 1024)
        np.testing.assert_array_equal(whole, np.concatenate([a, b]))


class TestSaturatedScopes:
    def test_small_scale_hub_saturation(self):
        """At tiny scales the hub's expected degree exceeds |V|; the exact
        sampler must still deliver a full, duplicate-free scope."""
        g = RecursiveVectorGenerator(6, 32, seed=51)
        e = g.edges()
        deg = np.bincount(e[:, 0], minlength=64)
        assert deg.max() <= 64
        packed = e[:, 0] * 64 + e[:, 1]
        assert np.unique(packed).size == e.shape[0]

    def test_reference_engine_saturation(self):
        g = RecursiveVectorGenerator(6, 32, seed=52, engine="reference")
        e = g.edges()
        packed = e[:, 0] * 64 + e[:, 1]
        assert np.unique(packed).size == e.shape[0]


class TestStatsObject:
    def test_merge(self):
        from repro.core.generator import GenerationStats
        a = GenerationStats(edges=10, duplicates_discarded=1,
                            recursion_steps=5, random_draws=7,
                            recvec_builds=2, max_scope_size=4)
        b = GenerationStats(edges=20, duplicates_discarded=2,
                            recursion_steps=50, random_draws=70,
                            recvec_builds=3, max_scope_size=9)
        a.merge(b)
        assert a.edges == 30
        assert a.max_scope_size == 9
        assert a.recvec_builds == 5


class TestDegenerateSeedEntries:
    """Regression: initiators with exact 0/1 entries force destination
    bits.  The samplers must short-circuit those levels — no division by
    zero in the single-uniform rescale, no randomness burned on certain
    events."""

    SELF_LOOPS = SeedMatrix.rmat(0.9, 0.0, 0.0, 0.1)   # dest bit == src bit
    ALL_ZERO = SeedMatrix.rmat(0.6, 0.0, 0.4, 0.0)     # dest always 0

    @pytest.mark.parametrize("engine", ["bitwise", "alias"])
    def test_batched_engines_force_bits(self, engine):
        g = RecursiveVectorGenerator(6, 2, self.SELF_LOOPS, engine=engine,
                                     dedup=False, seed=3)
        e = g.edges()
        assert e.size and (e[:, 0] == e[:, 1]).all()
        g0 = RecursiveVectorGenerator(6, 2, self.ALL_ZERO, engine=engine,
                                      dedup=False, seed=3)
        e0 = g0.edges()
        assert e0.size and (e0[:, 1] == 0).all()

    def test_bitwise_sampler_consumes_no_draws_on_forced_levels(self):
        from repro.core.generator import _BitwiseSampler
        from repro.core.process import PlainProcess
        levels = 6
        # ALL_ZERO forces every level for every source (p == 0 across
        # the column); SELF_LOOPS forces bits per source, which cannot
        # be short-circuited level-wise.
        proc = PlainProcess(self.ALL_ZERO, levels)
        sources = np.arange(1 << levels, dtype=np.uint64)
        sampler = _BitwiseSampler(proc.bit_probabilities(sources), levels)
        rng = np.random.default_rng(0)
        before = rng.bit_generator.state
        out = sampler.sample(np.arange(1 << levels, dtype=np.int64), rng)
        np.testing.assert_array_equal(out, np.zeros(1 << levels))
        # Every level is degenerate, so the stream must be untouched.
        assert rng.bit_generator.state == before

    @pytest.mark.parametrize("single_random", [True, False])
    def test_reference_bitpeel_engine(self, single_random):
        ideas = IdeaToggles(reuse_recvec=True, reduce_recursions=False,
                            single_random=single_random)
        g = RecursiveVectorGenerator(6, 2, self.SELF_LOOPS,
                                     engine="reference", ideas=ideas,
                                     dedup=False, seed=3)
        e = g.edges()
        assert e.size and (e[:, 0] == e[:, 1]).all()
        if not single_random:
            # All levels forced: the fresh-uniform mode draws nothing.
            assert g.stats.random_draws == 0

    def test_bitpeel_single_uniform_cannot_divide_by_zero(self):
        """Repeated rescaling can round x up to exactly 1.0; entering a
        p == 0 level in that state used to evaluate (1.0 - 1.0) / 0.0.
        Simulate the worst case by feeding the boundary uniform."""
        from repro.core.generator import (GenerationStats,
                                          _sample_destination_bitpeel)

        class BoundaryRng:
            def random(self):
                return 1.0

        bit_probs = np.array([0.0, 0.5, 0.0, 1.0])
        v = _sample_destination_bitpeel(bit_probs, BoundaryRng(), True,
                                        GenerationStats())
        # Bit 3 forced to 1, bits 2 and 0 forced to 0; x == 1.0 lands in
        # the upper branch of the one live level (bit 1).
        assert v == 0b1010
