"""Unit tests for repro.core.generator (the AVS engine, Algorithms 4-5)."""

import numpy as np
import pytest

from repro.core.generator import (AdjacencyBlock, IdeaToggles,
                                  RecursiveVectorGenerator)
from repro.core.seed import GRAPH500, SeedMatrix
from repro.errors import ConfigurationError


class TestConstruction:
    def test_defaults(self):
        g = RecursiveVectorGenerator(10)
        assert g.num_vertices == 1024
        assert g.num_edges == 16 * 1024
        assert g.seed_matrix == GRAPH500

    def test_explicit_num_edges(self):
        g = RecursiveVectorGenerator(10, num_edges=5000)
        assert g.num_edges == 5000

    def test_rejects_bad_scale(self):
        with pytest.raises(ConfigurationError):
            RecursiveVectorGenerator(0)
        with pytest.raises(ConfigurationError):
            RecursiveVectorGenerator(60)

    def test_rejects_bad_direction(self):
        with pytest.raises(ConfigurationError):
            RecursiveVectorGenerator(8, direction="sideways")

    def test_rejects_bad_engine(self):
        with pytest.raises(ConfigurationError):
            RecursiveVectorGenerator(8, engine="quantum")

    def test_rejects_bad_block_size(self):
        with pytest.raises(ConfigurationError):
            RecursiveVectorGenerator(8, block_size=0)


class TestEdges:
    def test_edge_count_near_target(self):
        g = RecursiveVectorGenerator(12, 16, seed=0)
        e = g.edges()
        assert abs(e.shape[0] - g.num_edges) / g.num_edges < 0.05

    def test_edges_in_range(self):
        g = RecursiveVectorGenerator(10, 8, seed=1)
        e = g.edges()
        assert e.min() >= 0
        assert e.max() < 1024

    def test_no_duplicate_edges(self):
        g = RecursiveVectorGenerator(10, 16, seed=2)
        e = g.edges()
        packed = e[:, 0] * 1024 + e[:, 1]
        assert np.unique(packed).size == e.shape[0]

    def test_duplicates_allowed_when_dedup_off(self):
        g = RecursiveVectorGenerator(6, 64, seed=3, dedup=False)
        e = g.edges()
        packed = e[:, 0] * 64 + e[:, 1]
        assert np.unique(packed).size < e.shape[0]

    def test_deterministic(self):
        e1 = RecursiveVectorGenerator(10, 16, seed=9).edges()
        e2 = RecursiveVectorGenerator(10, 16, seed=9).edges()
        np.testing.assert_array_equal(e1, e2)

    def test_seed_changes_graph(self):
        e1 = RecursiveVectorGenerator(10, 16, seed=1).edges()
        e2 = RecursiveVectorGenerator(10, 16, seed=2).edges()
        assert e1.shape != e2.shape or not np.array_equal(e1, e2)

    def test_partition_independence(self):
        """The same graph comes out regardless of how the vertex range is
        split — the property the AVS-level partitioner relies on."""
        whole = RecursiveVectorGenerator(11, 16, seed=5).edges()
        parts = [RecursiveVectorGenerator(11, 16, seed=5).edges(lo, hi)
                 for lo, hi in ((0, 100), (100, 1000), (1000, 2048))]
        np.testing.assert_array_equal(whole, np.concatenate(parts))

    def test_block_size_does_not_change_degrees_within_block_grid(self):
        # Degrees are keyed per block, so the same block_size must give the
        # same graph even via different iteration ranges (covered above);
        # different block_size is allowed to give a different (equally
        # valid) realization.
        g1 = RecursiveVectorGenerator(10, 16, seed=5, block_size=256)
        g2 = RecursiveVectorGenerator(10, 16, seed=5, block_size=256)
        np.testing.assert_array_equal(g1.edges(), g2.edges())


class TestDegrees:
    def test_degrees_match_edges(self):
        g = RecursiveVectorGenerator(10, 16, seed=7)
        degrees = g.degrees()
        e = g.edges()
        realized = np.bincount(e[:, 0], minlength=1024)
        np.testing.assert_array_equal(degrees, realized)

    def test_partial_range(self):
        g = RecursiveVectorGenerator(10, 16, seed=7)
        np.testing.assert_array_equal(g.degrees()[17:300],
                                      g.degrees(17, 300))

    def test_bad_range_rejected(self):
        g = RecursiveVectorGenerator(8)
        with pytest.raises(ValueError):
            g.degrees(10, 5)
        with pytest.raises(ValueError):
            g.degrees(0, 10**9)


class TestAdjacencyBlock:
    def test_iter_adjacency_consistent_with_edges(self):
        g = RecursiveVectorGenerator(9, 8, seed=11)
        pairs = [(u, tuple(vs)) for u, vs in g.iter_adjacency()]
        assert len(pairs) == 512
        edges = {(u, v) for u, vs in pairs for v in vs}
        from_edges = set(map(tuple, g.edges().tolist()))
        assert edges == from_edges

    def test_destinations_sorted_per_source(self):
        g = RecursiveVectorGenerator(9, 16, seed=12)
        for _, vs in g.iter_adjacency():
            assert np.all(np.diff(vs) > 0)

    def test_block_helpers(self):
        g = RecursiveVectorGenerator(8, 8, seed=13)
        block = g.generate_block(0)
        assert isinstance(block, AdjacencyBlock)
        assert block.num_edges == int(block.degrees.sum())
        ea = block.edge_array()
        assert ea.shape == (block.num_edges, 2)


class TestDirections:
    def test_in_direction_flips(self):
        """AVS-I on a symmetric seed yields a graph whose in-degree
        distribution matches AVS-O's out-degree distribution."""
        out_g = RecursiveVectorGenerator(10, 16, seed=21, direction="out")
        in_g = RecursiveVectorGenerator(10, 16, seed=21, direction="in")
        out_deg = np.bincount(out_g.edges()[:, 0], minlength=1024)
        in_deg = np.bincount(in_g.edges()[:, 1], minlength=1024)
        # Same seed stream and symmetric matrix: identical distributions.
        np.testing.assert_array_equal(np.sort(out_deg), np.sort(in_deg))

    def test_in_direction_edge_orientation(self):
        g = RecursiveVectorGenerator(9, 8, seed=22, direction="in")
        e = g.edges()
        assert e.min() >= 0 and e.max() < 512


class TestEnginesAndIdeas:
    def test_reference_engine_runs(self):
        g = RecursiveVectorGenerator(8, 8, seed=31, engine="reference")
        e = g.edges()
        assert e.shape[0] > 1500

    def test_idea_toggles_all_combinations(self):
        """All 8 idea combinations generate valid graphs of similar size
        (they are distributionally identical processes)."""
        sizes = []
        for i1 in (False, True):
            for i2 in (False, True):
                for i3 in (False, True):
                    g = RecursiveVectorGenerator(
                        8, 8, seed=32, engine="reference",
                        ideas=IdeaToggles(i1, i2, i3))
                    e = g.edges()
                    packed = e[:, 0] * 256 + e[:, 1]
                    assert np.unique(packed).size == e.shape[0]
                    sizes.append(e.shape[0])
        assert max(sizes) - min(sizes) < 0.2 * max(sizes)

    def test_idea1_off_rebuilds_recvec(self):
        on = RecursiveVectorGenerator(7, 8, seed=33, engine="reference",
                                      ideas=IdeaToggles(True, True, True))
        off = RecursiveVectorGenerator(7, 8, seed=33, engine="reference",
                                       ideas=IdeaToggles(False, True, True))
        on.edges()
        off.edges()
        assert off.stats.recvec_builds > 2 * on.stats.recvec_builds

    def test_idea2_off_recurses_per_level(self):
        on = RecursiveVectorGenerator(7, 8, seed=34, engine="reference",
                                      ideas=IdeaToggles(True, True, True))
        off = RecursiveVectorGenerator(7, 8, seed=34, engine="reference",
                                       ideas=IdeaToggles(True, False, True))
        on.edges()
        off.edges()
        # Idea #2 off: exactly log|V| recursions per attempted edge; on:
        # roughly 0.24 * log|V| (Graph500's 1-bit fraction).
        assert off.stats.recursion_steps > 2 * on.stats.recursion_steps

    def test_idea3_off_draws_more_randoms(self):
        on = RecursiveVectorGenerator(7, 8, seed=35, engine="reference",
                                      ideas=IdeaToggles(True, True, True))
        off = RecursiveVectorGenerator(7, 8, seed=35, engine="reference",
                                       ideas=IdeaToggles(True, True, False))
        on.edges()
        off.edges()
        assert off.stats.random_draws > on.stats.random_draws

    def test_stats_accumulate(self):
        g = RecursiveVectorGenerator(8, 16, seed=36)
        e = g.edges()
        assert g.stats.edges == e.shape[0]
        assert g.stats.max_scope_size >= 16


class TestNoiseIntegration:
    def test_noisy_generation(self):
        g = RecursiveVectorGenerator(10, 16, seed=41, noise=0.1)
        e = g.edges()
        assert abs(e.shape[0] - g.num_edges) / g.num_edges < 0.06

    def test_noise_changes_graph(self):
        e0 = RecursiveVectorGenerator(10, 16, seed=41, noise=0.0).edges()
        e1 = RecursiveVectorGenerator(10, 16, seed=41, noise=0.1).edges()
        assert e0.shape != e1.shape or not np.array_equal(e0, e1)

    def test_noise_stack_shared_across_ranges(self):
        """Two generators with the same config draw the same noisy stack,
        so split generation still composes to one coherent graph."""
        whole = RecursiveVectorGenerator(10, 16, seed=42, noise=0.1).edges()
        a = RecursiveVectorGenerator(10, 16, seed=42, noise=0.1).edges(0, 512)
        b = RecursiveVectorGenerator(10, 16, seed=42,
                                     noise=0.1).edges(512, 1024)
        np.testing.assert_array_equal(whole, np.concatenate([a, b]))


class TestSaturatedScopes:
    def test_small_scale_hub_saturation(self):
        """At tiny scales the hub's expected degree exceeds |V|; the exact
        sampler must still deliver a full, duplicate-free scope."""
        g = RecursiveVectorGenerator(6, 32, seed=51)
        e = g.edges()
        deg = np.bincount(e[:, 0], minlength=64)
        assert deg.max() <= 64
        packed = e[:, 0] * 64 + e[:, 1]
        assert np.unique(packed).size == e.shape[0]

    def test_reference_engine_saturation(self):
        g = RecursiveVectorGenerator(6, 32, seed=52, engine="reference")
        e = g.edges()
        packed = e[:, 0] * 64 + e[:, 1]
        assert np.unique(packed).size == e.shape[0]


class TestStatsObject:
    def test_merge(self):
        from repro.core.generator import GenerationStats
        a = GenerationStats(edges=10, duplicates_discarded=1,
                            recursion_steps=5, random_draws=7,
                            recvec_builds=2, max_scope_size=4)
        b = GenerationStats(edges=20, duplicates_discarded=2,
                            recursion_steps=50, random_draws=70,
                            recvec_builds=3, max_scope_size=9)
        a.merge(b)
        assert a.edges == 30
        assert a.max_scope_size == 9
        assert a.recvec_builds == 5
