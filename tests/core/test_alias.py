"""The linear-work alias-bundle sampling backend.

Covers the table layer (:mod:`repro.core.alias`: bundle PMFs, Vose
construction, vectorized draws), the ``_AliasSampler`` backend inside
the generator (distributional agreement with the exact conditional
P(v|u), determinism, bundle-depth plumbing), and the ``gen.alias.*``
telemetry including the headline ``recursions_per_edge`` collapse.
"""

import numpy as np
import pytest
from scipy import stats as sps

from repro.core.alias import build_alias_table, bundle_pmf, sample_alias
from repro.core.generator import RecursiveVectorGenerator
from repro.core.probability import edge_probability, row_probability
from repro.core.seed import GRAPH500, SeedMatrix
from repro.errors import ConfigurationError


class TestBundlePmf:
    def test_matches_explicit_product(self):
        probs = np.array([0.3, 0.8, 0.5])
        pmf = bundle_pmf(probs)
        assert pmf.size == 8
        for w in range(8):
            expected = 1.0
            for j, p in enumerate(probs):
                expected *= p if (w >> j) & 1 else 1.0 - p
            assert pmf[w] == pytest.approx(expected)
        assert pmf.sum() == pytest.approx(1.0)

    def test_degenerate_probs_concentrate_mass(self):
        pmf = bundle_pmf(np.array([0.0, 1.0]))
        # bit0 forced to 0, bit1 forced to 1 -> index 0b10.
        assert pmf[2] == 1.0
        assert pmf.sum() == 1.0

    def test_rejects_bad_shapes_and_depth(self):
        with pytest.raises(ValueError):
            bundle_pmf(np.empty(0))
        with pytest.raises(ValueError):
            bundle_pmf(np.full((2, 2), 0.5))
        with pytest.raises(ValueError):
            bundle_pmf(np.full(25, 0.5))


class TestBuildAliasTable:
    def exact_probabilities(self, prob, alias):
        """Per-outcome mass implied by the table (slot 1/n each)."""
        n = prob.size
        mass = np.zeros(n)
        for i in range(n):
            mass[i] += prob[i] / n
            mass[alias[i]] += (1.0 - prob[i]) / n
        return mass

    @pytest.mark.parametrize("weights", [
        [1.0, 1.0, 1.0, 1.0],
        [0.5, 0.25, 0.125, 0.125],
        [10.0, 1.0, 1e-6, 3.0],
        [0.0, 1.0, 0.0, 2.0],   # zero-weight outcomes
        [7.0],                  # single outcome
    ])
    def test_table_reproduces_weights_exactly(self, weights):
        w = np.asarray(weights, dtype=np.float64)
        prob, alias = build_alias_table(w)
        mass = self.exact_probabilities(prob, alias)
        np.testing.assert_allclose(mass, w / w.sum(), atol=1e-12)

    def test_zero_weight_outcomes_never_drawn(self):
        prob, alias = build_alias_table(np.array([0.0, 3.0, 0.0, 1.0]))
        rng = np.random.default_rng(0)
        draws = sample_alias(prob, alias, rng.random(20000),
                             rng.random(20000))
        assert set(np.unique(draws)) <= {1, 3}

    def test_rejects_invalid_weights(self):
        for bad in ([], [[1.0, 2.0]], [1.0, -0.5], [np.nan, 1.0],
                    [np.inf, 1.0], [0.0, 0.0]):
            with pytest.raises(ValueError):
                build_alias_table(np.asarray(bad, dtype=np.float64))

    def test_sample_alias_chi_square(self):
        w = np.array([0.45, 0.05, 0.3, 0.2])
        prob, alias = build_alias_table(w)
        rng = np.random.default_rng(7)
        n = 200000
        draws = sample_alias(prob, alias, rng.random(n), rng.random(n))
        counts = np.bincount(draws, minlength=4)
        expected = w * n
        chi2 = (((counts - expected) ** 2) / expected).sum()
        assert sps.chi2.sf(chi2, 3) > 1e-4

    def test_slot_saturation_is_safe(self):
        # slot_u == 1 - eps must clamp to the last slot, never index n.
        prob, alias = build_alias_table(np.array([1.0, 2.0, 3.0]))
        u = np.array([np.nextafter(1.0, 0.0)])
        out = sample_alias(prob, alias, u, np.array([0.0]))
        assert 0 <= out[0] < 3


class TestAliasBackend:
    def test_sampler_matches_exact_distribution(self):
        """The headline correctness property: bundle + fill reproduces
        the exact conditional distribution P(v|u) (chi-square GOF)."""
        levels, u, n = 6, 11, 200000
        # bundle_depth 4 < levels so both the gather and the fill run.
        g = RecursiveVectorGenerator(levels, 4, sampler="alias",
                                     bundle_depth=4, seed=0)
        sampler = g._build_alias_sampler(
            np.array([u], dtype=np.uint64))
        rng = np.random.default_rng(3)
        vs = sampler.sample(np.zeros(n, dtype=np.int64), rng)
        counts = np.bincount(vs, minlength=1 << levels)
        p_row = row_probability(GRAPH500, u, levels)
        expected = np.array(
            [edge_probability(GRAPH500, u, v, levels) / p_row
             for v in range(1 << levels)]) * n
        keep = expected > 5
        chi2 = (((counts[keep] - expected[keep]) ** 2)
                / expected[keep]).sum()
        dof = int(keep.sum()) - 1
        assert sps.chi2.sf(chi2, dof) > 1e-4

    def test_alias_agrees_with_vectorized(self):
        """Two-sample chi-square between backend destination histograms."""
        def histogram(engine, seed):
            g = RecursiveVectorGenerator(9, 16, seed=seed, engine=engine)
            return np.bincount(g.edges()[:, 1], minlength=512)
        h1 = histogram("vectorized", 100)
        h2 = histogram("alias", 200)
        keep = (h1 + h2) > 20
        a, b = h1[keep].astype(float), h2[keep].astype(float)
        na, nb = a.sum(), b.sum()
        pooled = (a + b) / (na + nb)
        chi2 = (((a - na * pooled) ** 2) / (na * pooled)
                + ((b - nb * pooled) ** 2) / (nb * pooled)).sum()
        assert sps.chi2.sf(chi2, int(keep.sum()) - 1) > 1e-4

    def test_deterministic_per_seed(self):
        a = RecursiveVectorGenerator(10, 4, sampler="alias", seed=5).edges()
        b = RecursiveVectorGenerator(10, 4, sampler="alias", seed=5).edges()
        np.testing.assert_array_equal(a, b)

    def test_bundle_depth_is_part_of_the_determinism_key(self):
        a = RecursiveVectorGenerator(12, 4, sampler="alias", seed=5,
                                     bundle_depth=8).edges()
        b = RecursiveVectorGenerator(12, 4, sampler="alias", seed=5,
                                     bundle_depth=4).edges()
        assert not np.array_equal(a, b)

    def test_scale_at_or_below_bundle_depth_is_pure_bundle(self):
        # Effective depth caps at scale: no fill draws, still valid.
        g = RecursiveVectorGenerator(6, 4, sampler="alias", seed=1,
                                     bundle_depth=8)
        e = g.edges()
        assert e.size and (0 <= e).all() and (e < 64).all()

    def test_table_cache_reused_across_blocks(self):
        g = RecursiveVectorGenerator(13, 2, sampler="alias", seed=2,
                                     block_size=1024)
        for _ in g.iter_blocks():
            pass
        # scale 13, depth 8 -> patterns are the top 8 bits: 256 total,
        # and every one is hit because the run covers all sources.
        assert len(g._alias_tables) == 256
        first = {k: (p.copy(), a.copy())
                 for k, (p, a) in g._alias_tables.items()}
        for _ in g.iter_blocks(0, 2048):
            pass
        for k, (p, a) in first.items():
            np.testing.assert_array_equal(p, g._alias_tables[k][0])

    def test_sampler_kwarg_maps_to_engines(self):
        assert RecursiveVectorGenerator(
            8, 4, sampler="recvec").engine == "vectorized"
        assert RecursiveVectorGenerator(
            8, 4, sampler="bitwise").engine == "bitwise"
        assert RecursiveVectorGenerator(
            8, 4, sampler="alias").engine == "alias"

    def test_invalid_sampler_and_bundle_depth_rejected(self):
        with pytest.raises(ConfigurationError):
            RecursiveVectorGenerator(8, 4, sampler="huffman")
        for depth in (0, -1, 25):
            with pytest.raises(ConfigurationError):
                RecursiveVectorGenerator(8, 4, sampler="alias",
                                         bundle_depth=depth)

    def test_degenerate_seed_entries(self):
        # Initiator with 0/1 column sums: every destination bit is
        # forced, so dest == source for all edges.
        m = SeedMatrix.rmat(0.9, 0.0, 0.0, 0.1)
        g = RecursiveVectorGenerator(6, 2, m, sampler="alias",
                                     dedup=False, seed=3)
        e = g.edges()
        assert e.size and (e[:, 0] == e[:, 1]).all()

    def test_draw_accounting(self):
        g = RecursiveVectorGenerator(12, 4, sampler="alias", seed=9,
                                     dedup=False)
        total = sum(b.num_edges for b in g.iter_blocks())
        # 2 uniforms per bundle + one per fill level (12 - 8 = 4).
        assert g.stats.random_draws == total * (2 + 4)


class TestAliasTelemetry:
    @pytest.fixture(autouse=True)
    def telemetry(self):
        from repro.telemetry import enable_telemetry, registry
        enable_telemetry(True)
        registry().reset()
        yield registry()
        enable_telemetry(False)

    def test_gen_alias_counters(self, telemetry):
        g = RecursiveVectorGenerator(12, 8, sampler="alias", seed=5)
        edges = sum(b.num_edges for b in g.iter_blocks())
        snap = telemetry.snapshot()
        assert snap["gen.alias.tables_built"]["value"] == \
            len(g._alias_tables)
        assert snap["gen.alias.build_seconds"]["value"] > 0.0
        # Every requested destination (including dedup top-ups) is one
        # bundle draw with fill = scale - depth bits.
        bundles = snap["gen.alias.bundle_draws"]["value"]
        assert bundles >= edges
        assert snap["gen.alias.fill_bits"]["value"] == bundles * 4

    def test_recursions_per_edge_collapses(self, telemetry):
        """Acceptance criterion: alias-backend mean recursions/edge is
        <= (levels - bundle_depth) + 1."""
        scale, depth = 14, 8
        g = RecursiveVectorGenerator(scale, 8, sampler="alias", seed=5,
                                     bundle_depth=depth)
        for _ in g.iter_blocks():
            pass
        hist = telemetry.snapshot()["generator.recursions_per_edge"]
        mean = hist["sum"] / hist["count"]
        assert mean <= (scale - depth) + 1

    def test_bytes_identical_with_telemetry_on_and_off(self, telemetry):
        from repro.telemetry import enable_telemetry
        on = RecursiveVectorGenerator(10, 4, sampler="alias",
                                      seed=7).edges()
        enable_telemetry(False)
        off = RecursiveVectorGenerator(10, 4, sampler="alias",
                                       seed=7).edges()
        np.testing.assert_array_equal(on, off)
