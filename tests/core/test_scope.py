"""Unit tests for repro.core.scope (Theorem 1)."""

import numpy as np
import pytest

from repro.core.probability import row_probabilities
from repro.core.scope import SCOPE_SIZE_METHODS, sample_scope_sizes
from repro.core.seed import GRAPH500


def rng():
    return np.random.default_rng(123)


class TestSampleScopeSizes:
    def test_mean_matches_theorem1(self):
        """Average degree over many draws approaches n*p."""
        p = np.full(20000, 1e-4)
        sizes = sample_scope_sizes(p, 100000, rng())
        assert abs(sizes.mean() - 10.0) < 0.2

    def test_variance_matches_theorem1(self):
        p = np.full(50000, 1e-4)
        n = 100000
        sizes = sample_scope_sizes(p, n, rng())
        expected_var = n * 1e-4 * (1 - 1e-4)
        assert abs(sizes.var() / expected_var - 1.0) < 0.1

    def test_normal_close_to_binomial(self):
        """The Theorem 1 approximation tracks the exact binomial."""
        p = np.full(30000, 5e-4)
        n = 64000
        normal = sample_scope_sizes(p, n, rng(), method="normal")
        binom = sample_scope_sizes(p, n, rng(), method="binomial")
        assert abs(normal.mean() - binom.mean()) < 0.3
        assert abs(normal.std() - binom.std()) < 0.5

    def test_poisson_method(self):
        p = np.full(20000, 1e-4)
        sizes = sample_scope_sizes(p, 100000, rng(), method="poisson")
        assert abs(sizes.mean() - 10.0) < 0.3

    def test_deterministic_method(self):
        p = np.array([0.25, 0.1])
        sizes = sample_scope_sizes(p, 100, rng(), method="deterministic")
        assert sizes.tolist() == [25, 10]
        # No randomness: repeated calls identical.
        again = sample_scope_sizes(p, 100, rng(), method="deterministic")
        assert sizes.tolist() == again.tolist()

    def test_never_negative(self):
        # Tiny np makes raw normal draws frequently negative; clipping must
        # keep all sizes at >= 0.
        p = np.full(50000, 1e-9)
        sizes = sample_scope_sizes(p, 1000, rng())
        assert sizes.min() >= 0

    def test_max_size_clip(self):
        p = np.array([0.9])
        sizes = sample_scope_sizes(p, 1000, rng(), max_size=100)
        assert sizes[0] == 100

    def test_rejects_bad_probabilities(self):
        with pytest.raises(ValueError):
            sample_scope_sizes(np.array([1.5]), 10, rng())
        with pytest.raises(ValueError):
            sample_scope_sizes(np.array([-0.1]), 10, rng())

    def test_rejects_unknown_method(self):
        with pytest.raises(ValueError):
            sample_scope_sizes(np.array([0.1]), 10, rng(), method="exact")

    def test_all_methods_listed(self):
        for method in SCOPE_SIZE_METHODS:
            sample_scope_sizes(np.array([0.01]), 100, rng(), method=method)

    def test_total_degree_near_num_edges(self):
        """Sum of all scope sizes concentrates around |E| (the realized
        edge count of the whole graph)."""
        levels, n_edges = 12, 4096 * 16
        us = np.arange(1 << levels, dtype=np.uint64)
        p = row_probabilities(GRAPH500, us, levels)
        sizes = sample_scope_sizes(p, n_edges, rng(),
                                   max_size=1 << levels)
        assert abs(sizes.sum() - n_edges) / n_edges < 0.02

    def test_hub_is_vertex_zero(self):
        levels = 10
        us = np.arange(1 << levels, dtype=np.uint64)
        p = row_probabilities(GRAPH500, us, levels)
        sizes = sample_scope_sizes(p, 16 << levels, rng(),
                                   max_size=1 << levels)
        assert sizes.argmax() == 0
