"""Tests for the base-n (n x n seed) AVS generator."""

import numpy as np
import pytest
from scipy import stats as sps

from repro.core.nary import NAryRecursiveVectorGenerator
from repro.core.generator import RecursiveVectorGenerator
from repro.core.seed import GRAPH500, SeedMatrix
from repro.errors import ConfigurationError

SEED3 = SeedMatrix(np.array([[0.30, 0.12, 0.08],
                             [0.12, 0.10, 0.05],
                             [0.08, 0.05, 0.10]]))


class TestConstruction:
    def test_vertex_count(self):
        g = NAryRecursiveVectorGenerator(SEED3, 5, num_edges=1000)
        assert g.num_vertices == 3 ** 5

    def test_default_edges(self):
        g = NAryRecursiveVectorGenerator(SEED3, 4)
        assert g.num_edges == 16 * 81

    def test_rejects_bad_depth(self):
        with pytest.raises(ConfigurationError):
            NAryRecursiveVectorGenerator(SEED3, 0)

    def test_rejects_bad_edges(self):
        with pytest.raises(ConfigurationError):
            NAryRecursiveVectorGenerator(SEED3, 4, num_edges=0)


class TestDigits:
    def test_digit_decomposition(self):
        g = NAryRecursiveVectorGenerator(SEED3, 3, num_edges=10)
        # 14 in base 3 = 112 -> digits LSB-first (2, 1, 1).
        digits = g._digits(np.array([14]))
        assert digits[0].tolist() == [2, 1, 1]

    def test_row_probabilities_sum_to_one(self):
        g = NAryRecursiveVectorGenerator(SEED3, 4, num_edges=10)
        probs = g.row_probabilities(np.arange(81))
        assert abs(float(probs.sum()) - 1.0) < 1e-9

    def test_row_probability_matches_kronecker(self):
        g = NAryRecursiveVectorGenerator(SEED3, 3, num_edges=10)
        full = SEED3.kronecker_power(3)
        probs = g.row_probabilities(np.arange(27))
        np.testing.assert_allclose(probs, full.sum(axis=1), rtol=1e-10)


class TestGeneration:
    def test_edge_count_and_range(self):
        g = NAryRecursiveVectorGenerator(SEED3, 7, num_edges=30000,
                                         seed=1)
        e = g.edges()
        n = 3 ** 7
        assert abs(e.shape[0] - 30000) / 30000 < 0.05
        assert e.min() >= 0 and e.max() < n

    def test_no_duplicates(self):
        g = NAryRecursiveVectorGenerator(SEED3, 6, num_edges=8000, seed=2)
        e = g.edges()
        packed = e[:, 0] * (3 ** 6) + e[:, 1]
        assert np.unique(packed).size == e.shape[0]

    def test_deterministic(self):
        a = NAryRecursiveVectorGenerator(SEED3, 6, num_edges=5000,
                                         seed=3).edges()
        b = NAryRecursiveVectorGenerator(SEED3, 6, num_edges=5000,
                                         seed=3).edges()
        np.testing.assert_array_equal(a, b)

    def test_degrees_match_edges(self):
        g = NAryRecursiveVectorGenerator(SEED3, 6, num_edges=8000, seed=4)
        degrees = g.degrees()
        e = g.edges()
        realized = np.bincount(e[:, 0], minlength=3 ** 6)
        np.testing.assert_array_equal(degrees, realized)

    def test_dedup_off_keeps_duplicates(self):
        g = NAryRecursiveVectorGenerator(SEED3, 3, num_edges=3000,
                                         seed=5, dedup=False)
        e = g.edges()
        packed = e[:, 0] * 27 + e[:, 1]
        assert np.unique(packed).size < e.shape[0]

    def test_cell_distribution_matches_kronecker(self):
        """Generated (u, v) frequencies follow K^{(D)} (chi-square)."""
        g = NAryRecursiveVectorGenerator(SEED3, 3, num_edges=60000,
                                         seed=6, dedup=False)
        e = g.edges()
        counts = np.bincount(e[:, 0] * 27 + e[:, 1],
                             minlength=27 * 27).astype(float)
        expected = SEED3.kronecker_power(3).ravel() * e.shape[0]
        keep = expected > 5
        chi2 = (((counts[keep] - expected[keep]) ** 2)
                / expected[keep]).sum()
        dof = int(keep.sum()) - 1
        assert sps.chi2.sf(chi2, dof) > 1e-4


class TestBinaryEquivalence:
    def test_n2_matches_main_generator_distribution(self):
        """With a 2x2 seed, the n-ary generator is the same process as
        the main recursive vector generator (KS on degrees)."""
        nary = NAryRecursiveVectorGenerator(GRAPH500, 11,
                                            num_edges=16 * 2048,
                                            seed=7).edges()
        binary = RecursiveVectorGenerator(11, 16, seed=8).edges()
        d1 = np.bincount(nary[:, 0], minlength=2048)
        d2 = np.bincount(binary[:, 0], minlength=2048)
        assert sps.ks_2samp(d1, d2).pvalue > 1e-4


class TestSaturation:
    def test_saturated_hub_handled(self):
        """High edge factor at small depth saturates hub scopes; the
        exact fallback must keep output duplicate-free."""
        g = NAryRecursiveVectorGenerator(SEED3, 3, num_edges=500, seed=9)
        e = g.edges()
        packed = e[:, 0] * 27 + e[:, 1]
        assert np.unique(packed).size == e.shape[0]
        deg = np.bincount(e[:, 0], minlength=27)
        assert deg.max() <= 27
