"""Unit tests for repro.core.recvec (Lemmas 2-4, Theorem 2, Algorithm 5)."""

import math
from decimal import Decimal

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.probability import brute_force_cdf, edge_probability
from repro.core.recvec import (build_recvec, build_recvec_decimal,
                               build_recvec_naive, build_recvecs,
                               determine_edge, determine_edge_cdf,
                               determine_edge_recursive, determine_edges,
                               determine_edges_rowwise, scale_symmetry_ratio,
                               sigma_from_recvec)
from repro.core.seed import GRAPH500, SeedMatrix

FIG3 = SeedMatrix.rmat(0.5, 0.2, 0.2, 0.1)


class TestBuildRecVec:
    def test_paper_example(self):
        # Section 4.2: RecVec for u=2, |V|=8 is [0.05, 0.07, 0.105, 0.147].
        rv = build_recvec(FIG3, 2, 3)
        assert np.allclose(rv, [0.05, 0.07, 0.105, 0.147])

    def test_matches_naive_definition(self):
        for u in range(8):
            fast = build_recvec(FIG3, u, 3)
            naive = build_recvec_naive(FIG3, u, 3)
            assert np.allclose(fast, naive)

    def test_monotone_nondecreasing(self):
        for u in (0, 5, 13, 255):
            rv = build_recvec(GRAPH500, u, 8)
            assert np.all(np.diff(rv) >= 0)

    def test_length(self):
        assert build_recvec(GRAPH500, 0, 12).size == 13

    def test_last_entry_is_row_probability(self):
        from repro.core.probability import row_probability
        rv = build_recvec(GRAPH500, 7, 6)
        assert math.isclose(float(rv[-1]), row_probability(GRAPH500, 7, 6))

    def test_batched_matches_scalar(self):
        us = np.arange(16, dtype=np.uint64)
        batch = build_recvecs(GRAPH500, us, 4)
        assert batch.shape == (16, 5)
        for u in range(16):
            assert np.allclose(batch[u], build_recvec(GRAPH500, u, 4))


class TestDecimalRecVec:
    def test_matches_float(self):
        dec = build_recvec_decimal(FIG3, 2, 3)
        flt = build_recvec(FIG3, 2, 3)
        for d, f in zip(dec, flt):
            assert math.isclose(float(d), float(f), rel_tol=1e-12)

    def test_returns_decimals(self):
        dec = build_recvec_decimal(GRAPH500, 5, 8)
        assert all(isinstance(d, Decimal) for d in dec)

    def test_high_precision_retains_digits(self):
        # At scale 40 float64 RecVec[0] underflows in relative precision
        # long before Decimal(60) does.
        import decimal as _decimal
        dec = build_recvec_decimal(GRAPH500, 0, 40, precision=60)
        assert dec[0] > 0
        # alpha/(alpha+beta) = 0.75 exactly; RecVec[0] = 0.75^40 * P(0->).
        with _decimal.localcontext(prec=60):
            expected = Decimal("0.75") ** 40 * (Decimal("0.76") ** 40)
            assert abs(dec[0] - expected) / expected < Decimal("1e-50")

    def test_determine_edge_accepts_decimal(self):
        # 0.12 is interior to cell v=4 (F(4)=0.105, F(5)=0.125); the paper's
        # 0.133 sits exactly on the F(6) knot and is representation-
        # sensitive, so an interior point is used here.
        dec = build_recvec_decimal(FIG3, 2, 3)
        assert determine_edge(Decimal("0.12"), dec) == 4

    def test_decimal_matches_float_at_interior_points(self):
        dec = build_recvec_decimal(FIG3, 2, 3)
        flt = build_recvec(FIG3, 2, 3)
        for x in ("0.01", "0.06", "0.08", "0.11", "0.14"):
            assert determine_edge(Decimal(x), dec) == determine_edge(
                float(x), flt)


class TestSymmetries:
    def test_scale_symmetry_examples(self):
        # Paper: for u=2, k=2 -> sigma = K[0,1]/K[0,0] = 0.2/0.5.
        assert math.isclose(scale_symmetry_ratio(FIG3, 2, 2), 0.4)
        # and k=1 -> sigma = K[1,1]/K[1,0] = 0.1/0.2.
        assert math.isclose(scale_symmetry_ratio(FIG3, 2, 1), 0.5)

    def test_scale_symmetry_in_pmf(self):
        """Lemma 3: P(u -> R+r) / P(u -> r) is constant over r < R."""
        for k in range(3):
            big_r = 1 << k
            expected = scale_symmetry_ratio(FIG3, 2, k)
            for r in range(big_r):
                ratio = (edge_probability(FIG3, 2, big_r + r, 3)
                         / edge_probability(FIG3, 2, r, 3))
                assert math.isclose(ratio, expected, rel_tol=1e-12)

    def test_translational_symmetry(self):
        """Lemma 4: F(R+r) = F(R) + sigma * F(r)."""
        cdf = brute_force_cdf(FIG3, 2, 3)
        for k in range(3):
            big_r = 1 << k
            sigma = scale_symmetry_ratio(FIG3, 2, k)
            for r in range(big_r + 1):
                assert math.isclose(float(cdf[big_r + r]),
                                    float(cdf[big_r] + sigma * cdf[r]),
                                    rel_tol=1e-12)

    def test_paper_lemma4_number(self):
        # F_2(6) = F_2(4) + sigma * F_2(2) = 0.105 + 0.4*0.07 = 0.133.
        cdf = brute_force_cdf(FIG3, 2, 3)
        assert math.isclose(float(cdf[6]), 0.105 + 0.4 * 0.07)

    def test_sigma_from_recvec_matches_seed_ratio(self):
        rv = build_recvec(FIG3, 2, 3)
        for k in range(3):
            assert math.isclose(sigma_from_recvec(rv, k),
                                scale_symmetry_ratio(FIG3, 2, k),
                                rel_tol=1e-12)


class TestDetermineEdge:
    def test_paper_worked_example(self):
        """Figure 5: u=2, x=0.133 resolves to destination 6."""
        rv = build_recvec(FIG3, 2, 3)
        assert determine_edge(0.133, rv) == 6

    def test_zero_region(self):
        rv = build_recvec(FIG3, 2, 3)
        assert determine_edge(0.01, rv) == 0
        assert determine_edge(0.0499, rv) == 0

    def test_recursive_matches_iterative(self):
        rv = build_recvec(GRAPH500, 11, 8)
        rng = np.random.default_rng(0)
        for x in rng.uniform(0, rv[-1], size=500):
            assert determine_edge(x, rv) == determine_edge_recursive(x, rv)

    def test_inverts_cdf_exactly(self):
        """For every destination v, any x in [F(v), F(v+1)) maps to v."""
        cdf = brute_force_cdf(FIG3, 2, 3)
        rv = build_recvec(FIG3, 2, 3)
        for v in range(8):
            lo, hi = float(cdf[v]), float(cdf[v + 1])
            mid = (lo + hi) / 2
            assert determine_edge(mid, rv) == v

    def test_boundary_at_top(self):
        rv = build_recvec(FIG3, 2, 3)
        # x == RecVec[top] is out of the half-open support; must still
        # terminate and return a valid vertex.
        v = determine_edge(float(rv[-1]), rv)
        assert 0 <= v < 8

    def test_destination_in_range(self):
        rv = build_recvec(GRAPH500, 999, 10)
        rng = np.random.default_rng(1)
        xs = rng.uniform(0, rv[-1], size=2000)
        for x in xs:
            assert 0 <= determine_edge(x, rv) < 1024


class TestDetermineEdgeCdf:
    def test_binary_matches_recvec(self):
        cdf = brute_force_cdf(FIG3, 2, 3)
        rv = build_recvec(FIG3, 2, 3)
        rng = np.random.default_rng(2)
        for x in rng.uniform(0, 0.147, size=300):
            assert determine_edge_cdf(x, cdf) == determine_edge(x, rv)

    def test_linear_matches_binary(self):
        cdf = brute_force_cdf(GRAPH500, 5, 5)
        rng = np.random.default_rng(3)
        for x in rng.uniform(0, cdf[-1], size=200):
            assert (determine_edge_cdf(x, cdf, "linear")
                    == determine_edge_cdf(x, cdf, "binary"))

    def test_unknown_strategy(self):
        cdf = brute_force_cdf(FIG3, 0, 3)
        with pytest.raises(ValueError):
            determine_edge_cdf(0.1, cdf, "ternary")


class TestVectorizedDetermine:
    def test_matches_scalar_single_recvec(self):
        rv = build_recvec(GRAPH500, 37, 9)
        rng = np.random.default_rng(4)
        xs = rng.uniform(0, rv[-1], size=1000)
        vec = determine_edges(xs, rv)
        scalar = [determine_edge(float(x), rv) for x in xs]
        assert vec.tolist() == scalar

    def test_rowwise_matches_scalar(self):
        us = np.array([0, 3, 7, 12, 31], dtype=np.uint64)
        recvecs = build_recvecs(GRAPH500, us, 5)
        rng = np.random.default_rng(5)
        rows = rng.integers(0, 5, size=800)
        xs = rng.random(800) * recvecs[rows, -1]
        vec = determine_edges_rowwise(xs, recvecs, rows)
        for j in range(800):
            assert vec[j] == determine_edge(float(xs[j]), recvecs[rows[j]])

    def test_empty_input(self):
        rv = build_recvec(GRAPH500, 0, 4)
        assert determine_edges(np.array([]), rv).size == 0


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=2, max_value=8),
       st.integers(min_value=0, max_value=255),
       st.integers(min_value=0, max_value=2**31 - 1))
def test_determine_edge_inverts_cdf_property(levels, u, raw):
    """Property: Algorithm 5 equals naive CDF inversion for random inputs."""
    u &= (1 << levels) - 1
    cdf = brute_force_cdf(GRAPH500, u, levels)
    rv = build_recvec(GRAPH500, u, levels)
    x = (raw / 2**31) * float(cdf[-1])
    assert determine_edge(x, rv) == determine_edge_cdf(x, cdf)
