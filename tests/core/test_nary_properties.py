"""Property-based tests for the n-ary (general SKG) generator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.nary import NAryRecursiveVectorGenerator
from repro.core.seed import SeedMatrix


@st.composite
def nxn_seeds(draw):
    order = draw(st.integers(min_value=2, max_value=4))
    weights = np.array([draw(st.floats(min_value=0.05, max_value=1.0))
                        for _ in range(order * order)])
    return SeedMatrix((weights / weights.sum()).reshape(order, order))


@settings(max_examples=15, deadline=None)
@given(nxn_seeds(), st.integers(min_value=2, max_value=5),
       st.integers(min_value=0, max_value=2**31))
def test_nary_wellformed_for_any_seed(seed_matrix, depth, rng_seed):
    """Any valid n x n seed yields in-range, duplicate-free edges whose
    realized count equals the drawn degree sequence."""
    n = seed_matrix.order ** depth
    g = NAryRecursiveVectorGenerator(seed_matrix, depth,
                                     num_edges=min(4 * n, 5000),
                                     seed=rng_seed)
    edges = g.edges()
    if edges.shape[0]:
        assert edges.min() >= 0
        assert edges.max() < n
        packed = edges[:, 0] * np.int64(n) + edges[:, 1]
        assert np.unique(packed).size == edges.shape[0]
    assert edges.shape[0] == int(g.degrees().sum())


@settings(max_examples=10, deadline=None)
@given(nxn_seeds(), st.integers(min_value=2, max_value=4))
def test_nary_row_probabilities_normalized(seed_matrix, depth):
    g = NAryRecursiveVectorGenerator(seed_matrix, depth, num_edges=10)
    total = g.row_probabilities(
        np.arange(seed_matrix.order ** depth)).sum()
    assert abs(float(total) - 1.0) < 1e-9


@settings(max_examples=10, deadline=None)
@given(nxn_seeds(), st.integers(min_value=2, max_value=4),
       st.integers(min_value=0, max_value=2**31))
def test_nary_deterministic(seed_matrix, depth, rng_seed):
    n = seed_matrix.order ** depth
    kwargs = dict(num_edges=min(2 * n, 2000), seed=rng_seed)
    a = NAryRecursiveVectorGenerator(seed_matrix, depth, **kwargs).edges()
    b = NAryRecursiveVectorGenerator(seed_matrix, depth, **kwargs).edges()
    np.testing.assert_array_equal(a, b)
