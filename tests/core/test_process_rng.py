"""Tests for the EdgeProcess abstraction and the RNG stream manager."""

import numpy as np
import pytest

from repro.core.noise import NoisySeedStack
from repro.core.process import (NoisyProcess, PlainProcess, make_process)
from repro.core.recvec import build_recvec
from repro.core.rng import derive_seed, spawn_streams, stream
from repro.core.seed import GRAPH500, SeedMatrix


class TestPlainProcess:
    def test_recvec_matches_module_function(self):
        proc = PlainProcess(GRAPH500, 6)
        for u in (0, 7, 63):
            np.testing.assert_allclose(proc.build_recvec(u),
                                       build_recvec(GRAPH500, u, 6))

    def test_num_vertices(self):
        assert PlainProcess(GRAPH500, 10).num_vertices == 1024

    def test_rejects_nxn(self):
        seed3 = SeedMatrix(np.full((3, 3), 1.0 / 9))
        with pytest.raises(ValueError):
            PlainProcess(seed3, 4)

    def test_bit_probabilities_shape(self):
        proc = PlainProcess(GRAPH500, 5)
        probs = proc.bit_probabilities(np.arange(8, dtype=np.uint64))
        assert probs.shape == (8, 5)
        assert np.all((0 <= probs) & (probs <= 1))

    def test_row_probabilities_normalized(self):
        proc = PlainProcess(GRAPH500, 8)
        total = proc.row_probabilities(
            np.arange(256, dtype=np.uint64)).sum()
        assert abs(float(total) - 1.0) < 1e-12


class TestMakeProcess:
    def test_zero_noise_is_plain(self):
        proc = make_process(GRAPH500, 6, 0.0, np.random.default_rng(0))
        assert isinstance(proc, PlainProcess)

    def test_nonzero_noise_is_noisy(self):
        proc = make_process(GRAPH500, 6, 0.1, np.random.default_rng(0))
        assert isinstance(proc, NoisyProcess)

    def test_noisy_process_delegates(self):
        rng = np.random.default_rng(1)
        stack = NoisySeedStack.draw(GRAPH500, 5, 0.1, rng)
        proc = NoisyProcess(stack)
        us = np.arange(32, dtype=np.uint64)
        np.testing.assert_array_equal(proc.row_probabilities(us),
                                      stack.row_probabilities(us))
        np.testing.assert_array_equal(proc.build_recvecs(us),
                                      stack.build_recvecs(us))

    def test_noisy_process_reduces_to_plain_at_zero_mu(self):
        """A stack of identical (unperturbed) matrices equals the plain
        process."""
        stack = NoisySeedStack([GRAPH500] * 6)
        noisy = NoisyProcess(stack)
        plain = PlainProcess(GRAPH500, 6)
        us = np.arange(64, dtype=np.uint64)
        np.testing.assert_allclose(noisy.row_probabilities(us),
                                   plain.row_probabilities(us))
        np.testing.assert_allclose(noisy.build_recvecs(us),
                                   plain.build_recvecs(us))
        np.testing.assert_allclose(noisy.bit_probabilities(us),
                                   plain.bit_probabilities(us))


class TestRngStreams:
    def test_stream_deterministic(self):
        a = stream(42, 1, 2).random(5)
        b = stream(42, 1, 2).random(5)
        np.testing.assert_array_equal(a, b)

    def test_labels_separate_streams(self):
        a = stream(42, 1).random(5)
        b = stream(42, 2).random(5)
        assert not np.array_equal(a, b)

    def test_seed_separates_streams(self):
        a = stream(1, 7).random(5)
        b = stream(2, 7).random(5)
        assert not np.array_equal(a, b)

    def test_spawn_streams_independent(self):
        streams = spawn_streams(3, 4)
        assert len(streams) == 4
        draws = [s.random(3) for s in streams]
        for i in range(4):
            for j in range(i + 1, 4):
                assert not np.array_equal(draws[i], draws[j])

    def test_derive_seed_deterministic_and_bounded(self):
        s1 = derive_seed(10, 5)
        s2 = derive_seed(10, 5)
        assert s1 == s2
        assert 0 <= s1 < 2**63
        assert derive_seed(10, 6) != s1
