"""Unit tests for repro.core.bits."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.bits import (bit_at, bits, bits_array, bits_of, ilog2,
                             is_power_of_two, mask, ones_positions,
                             reverse_bits)


class TestBits:
    def test_zero(self):
        assert bits(0) == 0

    def test_small_values(self):
        assert bits(1) == 1
        assert bits(2) == 1
        assert bits(3) == 2
        assert bits(255) == 8
        assert bits(256) == 1

    def test_large_value(self):
        assert bits((1 << 63) - 1) == 63

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            bits(-1)

    @given(st.integers(min_value=0, max_value=2**62))
    def test_matches_bin_count(self, x):
        assert bits(x) == bin(x).count("1")


class TestBitsArray:
    def test_matches_scalar(self):
        xs = np.array([0, 1, 2, 3, 255, 2**40 + 1], dtype=np.uint64)
        expected = [bits(int(x)) for x in xs]
        assert bits_array(xs).tolist() == expected

    @given(st.lists(st.integers(min_value=0, max_value=2**62), min_size=1,
                    max_size=50))
    def test_property(self, values):
        arr = np.array(values, dtype=np.uint64)
        assert bits_array(arr).tolist() == [bits(v) for v in values]


class TestBitAt:
    def test_examples(self):
        # 0b1010
        assert bit_at(10, 0) == 0
        assert bit_at(10, 1) == 1
        assert bit_at(10, 2) == 0
        assert bit_at(10, 3) == 1

    @given(st.integers(min_value=0, max_value=2**40), st.integers(0, 40))
    def test_reconstruction(self, x, width):
        if x < (1 << width):
            assert sum(bit_at(x, k) << k for k in range(width)) == x


class TestBitsOf:
    def test_msb_first(self):
        assert bits_of(0b0101, 4) == (0, 1, 0, 1)

    def test_padding(self):
        assert bits_of(1, 4) == (0, 0, 0, 1)

    def test_overflow_rejected(self):
        with pytest.raises(ValueError):
            bits_of(16, 4)


class TestMaskAndPowers:
    def test_mask(self):
        assert mask(0) == 0
        assert mask(4) == 0b1111
        assert mask(36) == 2**36 - 1

    def test_is_power_of_two(self):
        assert is_power_of_two(1)
        assert is_power_of_two(1024)
        assert not is_power_of_two(0)
        assert not is_power_of_two(3)
        assert not is_power_of_two(-4)

    def test_ilog2(self):
        assert ilog2(1) == 0
        assert ilog2(2**36) == 36
        with pytest.raises(ValueError):
            ilog2(3)
        with pytest.raises(ValueError):
            ilog2(0)


class TestOnesPositions:
    def test_examples(self):
        assert ones_positions(0) == []
        assert ones_positions(6) == [1, 2]
        assert ones_positions(1 << 35) == [35]

    @given(st.integers(min_value=0, max_value=2**50))
    def test_roundtrip(self, x):
        assert sum(1 << k for k in ones_positions(x)) == x


class TestReverseBits:
    def test_examples(self):
        assert reverse_bits(0b0011, 4) == 0b1100
        assert reverse_bits(1, 8) == 128

    @given(st.integers(min_value=0, max_value=2**20 - 1))
    def test_involution(self, x):
        assert reverse_bits(reverse_bits(x, 20), 20) == x
