"""Unit tests for repro.core.noise (NSKG, Appendix C)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.noise import NoisySeedStack, max_noise, noisy_seed_matrices
from repro.core.seed import GRAPH500, SeedMatrix
from repro.errors import ConfigurationError


def rng(seed=0):
    return np.random.default_rng(seed)


class TestMaxNoise:
    def test_graph500(self):
        # min((0.57 + 0.05)/2, 0.19) = min(0.31, 0.19) = 0.19
        assert math.isclose(max_noise(GRAPH500), 0.19)

    def test_beta_binding(self):
        k = SeedMatrix.rmat(0.6, 0.05, 0.05, 0.3)
        assert math.isclose(max_noise(k), 0.05)


class TestNoisySeedMatrices:
    def test_count(self):
        mats = noisy_seed_matrices(GRAPH500, 20, 0.1, rng())
        assert len(mats) == 20

    def test_zero_noise_reproduces_base(self):
        mats = noisy_seed_matrices(GRAPH500, 5, 0.0, rng())
        for m in mats:
            assert np.allclose(m.entries, GRAPH500.entries)

    def test_each_level_sums_to_one(self):
        """Definition 3's perturbation preserves total mass exactly."""
        mats = noisy_seed_matrices(GRAPH500, 30, 0.19, rng())
        for m in mats:
            assert math.isclose(float(m.entries.sum()), 1.0, abs_tol=1e-9)

    def test_levels_differ(self):
        mats = noisy_seed_matrices(GRAPH500, 10, 0.1, rng())
        betas = {m.beta for m in mats}
        assert len(betas) > 1

    def test_entries_nonnegative_at_max_noise(self):
        mats = noisy_seed_matrices(GRAPH500, 200, max_noise(GRAPH500),
                                   rng())
        for m in mats:
            assert np.all(m.entries >= -1e-12)

    def test_rejects_excess_noise(self):
        with pytest.raises(ConfigurationError):
            noisy_seed_matrices(GRAPH500, 10, 0.5, rng())

    def test_rejects_negative_noise(self):
        with pytest.raises(ConfigurationError):
            noisy_seed_matrices(GRAPH500, 10, -0.1, rng())

    def test_deterministic_given_rng(self):
        m1 = noisy_seed_matrices(GRAPH500, 8, 0.1, rng(7))
        m2 = noisy_seed_matrices(GRAPH500, 8, 0.1, rng(7))
        for a, b in zip(m1, m2):
            assert a == b

    @settings(max_examples=20)
    @given(st.floats(min_value=0.0, max_value=0.19))
    def test_definition3_structure(self, noise):
        """alpha and delta shrink by the same factor; beta and gamma are
        shifted by the same mu."""
        mats = noisy_seed_matrices(GRAPH500, 3, noise, rng(11))
        a0, b0, c0, d0 = GRAPH500.as_tuple()
        for m in mats:
            a, b, c, d = m.as_tuple()
            mu = b - b0
            assert math.isclose(c - c0, mu, abs_tol=1e-12)
            shrink = 1 - 2 * mu / (a0 + d0)
            assert math.isclose(a, a0 * shrink, rel_tol=1e-12)
            assert math.isclose(d, d0 * shrink, rel_tol=1e-12)


class TestNoisySeedStack:
    def make(self, levels=6, noise=0.1, seed=3):
        return NoisySeedStack.draw(GRAPH500, levels, noise, rng(seed))

    def test_row_probabilities_match_kronecker_product(self):
        """Lemma 7 equals the explicit K_0 ⊗ ... ⊗ K_{L-1} row sums."""
        stack = self.make(levels=4)
        full = stack.matrices[0].entries
        for m in stack.matrices[1:]:
            full = np.kron(full, m.entries)
        rows = full.sum(axis=1)
        got = stack.row_probabilities(np.arange(16, dtype=np.uint64))
        assert np.allclose(got, rows)

    def test_recvec_matches_kronecker_cdf(self):
        """Lemma 8 equals CDF values at powers of two from the explicit
        noisy Kronecker matrix."""
        stack = self.make(levels=4)
        full = stack.matrices[0].entries
        for m in stack.matrices[1:]:
            full = np.kron(full, m.entries)
        recvecs = stack.build_recvecs(np.arange(16, dtype=np.uint64))
        for u in range(16):
            cdf = np.concatenate([[0.0], np.cumsum(full[u])])
            for x in range(5):
                assert math.isclose(float(recvecs[u, x]),
                                    float(cdf[1 << x]), rel_tol=1e-10)

    def test_bit_probabilities_match_matrix(self):
        stack = self.make(levels=3)
        probs = stack.bit_probabilities(np.arange(8, dtype=np.uint64))
        for u in range(8):
            for x in range(3):
                level = 3 - 1 - x
                s = (u >> x) & 1
                m = stack.matrices[level].entries
                expected = m[s, 1] / (m[s, 0] + m[s, 1])
                assert math.isclose(float(probs[u, x]), expected)

    def test_total_mass_one(self):
        stack = self.make(levels=8)
        total = stack.row_probabilities(
            np.arange(256, dtype=np.uint64)).sum()
        assert math.isclose(float(total), 1.0, abs_tol=1e-9)

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            NoisySeedStack([])

    def test_recvec_monotone(self):
        stack = self.make(levels=10)
        recvecs = stack.build_recvecs(np.array([0, 77, 1023],
                                               dtype=np.uint64))
        assert np.all(np.diff(recvecs, axis=1) >= 0)


class TestNoisyRecVecInversion:
    """Lemma 8 + Algorithm 5 end-to-end: under noise, determine_edge on
    the noisy RecVec inverts the noisy Kronecker CDF exactly."""

    def test_determine_edge_inverts_noisy_cdf(self):
        from repro.core.recvec import determine_edge
        stack = NoisySeedStack.draw(GRAPH500, 5, 0.15, rng(13))
        full = stack.matrices[0].entries
        for m in stack.matrices[1:]:
            full = np.kron(full, m.entries)
        rng_x = rng(14)
        for u in (0, 9, 31):
            recvec = stack.build_recvecs(
                np.array([u], dtype=np.uint64))[0]
            cdf = np.concatenate([[0.0], np.cumsum(full[u])])
            for x in rng_x.uniform(0, recvec[-1], size=300):
                v = determine_edge(float(x), recvec)
                assert cdf[v] <= x < cdf[v + 1] or (
                    x >= cdf[-2] and v == full.shape[1] - 1)

    def test_vectorized_matches_scalar_under_noise(self):
        from repro.core.recvec import (determine_edge,
                                       determine_edges_rowwise)
        stack = NoisySeedStack.draw(GRAPH500, 6, 0.1, rng(15))
        us = np.array([0, 5, 17, 63], dtype=np.uint64)
        recvecs = stack.build_recvecs(us)
        rng_x = rng(16)
        rows = rng_x.integers(0, 4, size=400)
        xs = rng_x.random(400) * recvecs[rows, -1]
        vec = determine_edges_rowwise(xs, recvecs, rows)
        for j in range(400):
            assert vec[j] == determine_edge(float(xs[j]),
                                            recvecs[rows[j]])

    def test_noisy_sigma_differs_per_level(self):
        """Under noise, Algorithm 5's in-place sigma (Lemma 8 RecVec
        ratios) varies across k — unlike the noiseless case where it is
        one of two constants (Lemma 3)."""
        from repro.core.recvec import sigma_from_recvec
        stack = NoisySeedStack.draw(GRAPH500, 8, 0.15, rng(17))
        recvec = stack.build_recvecs(np.array([0], dtype=np.uint64))[0]
        sigmas = {round(float(sigma_from_recvec(recvec, k)), 9)
                  for k in range(8)}
        assert len(sigmas) > 2
