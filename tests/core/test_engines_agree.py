"""Cross-engine distributional agreement.

The three engines (reference / vectorized / bitwise) implement the same
stochastic process by different means; these tests verify their outputs are
statistically indistinguishable (chi-square on destination histograms) and
that the process matches the exact conditional distribution P(v | u).
"""

import numpy as np
import pytest
from scipy import stats as sps

from repro.core.generator import RecursiveVectorGenerator
from repro.core.probability import edge_probability, row_probability
from repro.core.recvec import build_recvec, determine_edges
from repro.core.seed import GRAPH500, SeedMatrix

FIG3 = SeedMatrix.rmat(0.5, 0.2, 0.2, 0.1)


def destination_histogram(engine: str, scale: int, seed: int) -> np.ndarray:
    g = RecursiveVectorGenerator(scale, 16, seed=seed, engine=engine)
    e = g.edges()
    return np.bincount(e[:, 1], minlength=1 << scale)


class TestSamplerMatchesExactDistribution:
    def test_recvec_sampler_chi_square(self):
        """Theorem 2 sampling reproduces P(v|u) (chi-square GOF)."""
        levels, u, n = 5, 11, 200000
        rv = build_recvec(GRAPH500, u, levels)
        rng = np.random.default_rng(0)
        xs = rng.uniform(0, rv[-1], size=n)
        vs = determine_edges(xs, rv)
        counts = np.bincount(vs, minlength=1 << levels)
        p_row = row_probability(GRAPH500, u, levels)
        expected = np.array(
            [edge_probability(GRAPH500, u, v, levels) / p_row
             for v in range(1 << levels)]) * n
        keep = expected > 5
        chi2 = (((counts[keep] - expected[keep]) ** 2)
                / expected[keep]).sum()
        dof = int(keep.sum()) - 1
        assert sps.chi2.sf(chi2, dof) > 1e-4

    def test_bitwise_sampler_chi_square(self):
        from repro.core.generator import _BitwiseSampler
        from repro.core.process import PlainProcess
        levels, u, n = 5, 11, 200000
        proc = PlainProcess(GRAPH500, levels)
        sampler = _BitwiseSampler(
            proc.bit_probabilities(np.array([u], dtype=np.uint64)), levels)
        rng = np.random.default_rng(1)
        vs = sampler.sample(np.zeros(n, dtype=np.int64), rng)
        counts = np.bincount(vs, minlength=1 << levels)
        p_row = row_probability(GRAPH500, u, levels)
        expected = np.array(
            [edge_probability(GRAPH500, u, v, levels) / p_row
             for v in range(1 << levels)]) * n
        keep = expected > 5
        chi2 = (((counts[keep] - expected[keep]) ** 2)
                / expected[keep]).sum()
        dof = int(keep.sum()) - 1
        assert sps.chi2.sf(chi2, dof) > 1e-4


class TestEnginesAgree:
    @pytest.mark.parametrize("other", ["bitwise", "reference"])
    def test_destination_distributions_match(self, other):
        """Two-sample chi-square between engines' destination histograms."""
        h1 = destination_histogram("vectorized", 9, seed=100)
        h2 = destination_histogram(other, 9, seed=200)
        # Pool cells with small expectation.
        keep = (h1 + h2) > 20
        a, b = h1[keep].astype(float), h2[keep].astype(float)
        na, nb = a.sum(), b.sum()
        pooled = (a + b) / (na + nb)
        chi2 = (((a - na * pooled) ** 2) / (na * pooled)
                + ((b - nb * pooled) ** 2) / (nb * pooled)).sum()
        dof = int(keep.sum()) - 1
        assert sps.chi2.sf(chi2, dof) > 1e-4

    def test_out_degree_distributions_match(self):
        g1 = RecursiveVectorGenerator(10, 16, seed=300, engine="vectorized")
        g2 = RecursiveVectorGenerator(10, 16, seed=301, engine="bitwise")
        d1 = np.bincount(g1.edges()[:, 0], minlength=1024)
        d2 = np.bincount(g2.edges()[:, 0], minlength=1024)
        # Kolmogorov-Smirnov on the degree samples.
        stat = sps.ks_2samp(d1, d2)
        assert stat.pvalue > 1e-4
