"""Run the executable doctest examples embedded in docstrings."""

import doctest

import pytest

import repro
import repro.core.seed
import repro.analysis.degree

MODULES = [repro, repro.core.seed, repro.analysis.degree]


@pytest.mark.parametrize("module", MODULES,
                         ids=lambda m: m.__name__)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False,
                              optionflags=doctest.ELLIPSIS)
    assert results.failed == 0, f"{results.failed} doctest failures"
    # The package docstring carries at least one runnable example.
    if module is repro:
        assert results.attempted >= 1
