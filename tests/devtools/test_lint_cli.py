"""CLI behaviour (exit codes, reporters) and the repo self-check."""

from __future__ import annotations

import json
from pathlib import Path

import repro
from repro.devtools import all_checkers, lint_paths
from repro.devtools.lint import main

CLEAN = "__all__ = ['f']\n\n\ndef f():\n    return 0\n"
DIRTY = ("import random\n\n__all__ = ['f']\n\n\n"
         "def f(x=[]):\n"
         "    return x == 0.3\n")


def test_exit_zero_on_clean_tree(tmp_path, capsys):
    (tmp_path / "ok.py").write_text(CLEAN)
    assert main([str(tmp_path)]) == 0
    assert "clean" in capsys.readouterr().out


def test_exit_one_with_correct_report_on_violations(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text(DIRTY)
    assert main([str(tmp_path)]) == 1
    out = capsys.readouterr().out
    # one line per finding, path:line:col prefixed, plus a summary footer
    assert f"{bad}:1:0: RPL101" in out
    assert "RPL601" in out and "RPL301" in out
    assert "3 finding(s) in 1 file(s)" in out


def test_json_report(tmp_path, capsys):
    (tmp_path / "bad.py").write_text(DIRTY)
    assert main([str(tmp_path), "--format", "json"]) == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["tool"] == "reprolint"
    assert doc["files_checked"] == 1
    assert doc["summary"] == {"mutable-defaults": 1,
                              "numerical-safety": 1,
                              "rng-determinism": 1}
    assert {v["code"] for v in doc["violations"]} == {
        "RPL101", "RPL301", "RPL601"}


def test_select_and_ignore(tmp_path):
    (tmp_path / "bad.py").write_text(DIRTY)
    assert main([str(tmp_path), "--select", "exception-hygiene"]) == 0
    assert main([str(tmp_path), "--ignore",
                 "rng-determinism,mutable-defaults,numerical-safety"]) == 0


def test_exit_two_on_unknown_checker(tmp_path, capsys):
    (tmp_path / "ok.py").write_text(CLEAN)
    assert main([str(tmp_path), "--select", "nope"]) == 2
    assert "error" in capsys.readouterr().err


def test_exit_two_on_missing_path(tmp_path, capsys):
    assert main([str(tmp_path / "absent.q")]) == 2
    assert "error" in capsys.readouterr().err


def test_exit_two_on_syntax_error(tmp_path, capsys):
    (tmp_path / "broken.py").write_text("def f(:\n")
    assert main([str(tmp_path)]) == 2
    assert "syntax error" in capsys.readouterr().err


def test_list_checkers(capsys):
    assert main(["--list-checkers"]) == 0
    out = capsys.readouterr().out
    for name in ("rng-determinism", "layering", "numerical-safety",
                 "exception-hygiene", "api-completeness",
                 "mutable-defaults"):
        assert name in out


def test_at_least_six_checkers_registered():
    assert len(all_checkers()) >= 6


def test_reprolint_runs_clean_on_the_repo_itself():
    """The acceptance gate: src/repro carries zero violations."""
    package_dir = Path(repro.__file__).parent
    violations, files_checked = lint_paths([package_dir])
    assert violations == [], "\n".join(v.render() for v in violations)
    assert files_checked > 70
