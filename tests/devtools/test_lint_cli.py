"""CLI behaviour (exit codes, reporters) and the repo self-check."""

from __future__ import annotations

import json
from pathlib import Path

import repro
from repro.devtools import all_checkers, lint_paths
from repro.devtools.lint import main

CLEAN = "__all__ = ['f']\n\n\ndef f():\n    return 0\n"
DIRTY = ("import random\n\n__all__ = ['f']\n\n\n"
         "def f(x=[]):\n"
         "    return x == 0.3\n")


def test_exit_zero_on_clean_tree(tmp_path, capsys):
    (tmp_path / "ok.py").write_text(CLEAN)
    assert main([str(tmp_path)]) == 0
    assert "clean" in capsys.readouterr().out


def test_exit_one_with_correct_report_on_violations(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text(DIRTY)
    assert main([str(tmp_path)]) == 1
    out = capsys.readouterr().out
    # one line per finding, path:line:col prefixed, plus a summary footer
    assert f"{bad}:1:0: RPL101" in out
    assert "RPL601" in out and "RPL301" in out
    assert "3 finding(s) in 1 file(s)" in out


def test_json_report(tmp_path, capsys):
    (tmp_path / "bad.py").write_text(DIRTY)
    assert main([str(tmp_path), "--format", "json"]) == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["tool"] == "reprolint"
    assert doc["files_checked"] == 1
    assert doc["summary"] == {"mutable-defaults": 1,
                              "numerical-safety": 1,
                              "rng-determinism": 1}
    assert {v["code"] for v in doc["violations"]} == {
        "RPL101", "RPL301", "RPL601"}


def test_select_and_ignore(tmp_path):
    (tmp_path / "bad.py").write_text(DIRTY)
    assert main([str(tmp_path), "--select", "exception-hygiene"]) == 0
    assert main([str(tmp_path), "--ignore",
                 "rng-determinism,mutable-defaults,numerical-safety"]) == 0


def test_exit_two_on_unknown_checker(tmp_path, capsys):
    (tmp_path / "ok.py").write_text(CLEAN)
    assert main([str(tmp_path), "--select", "nope"]) == 2
    assert "error" in capsys.readouterr().err


def test_exit_two_on_missing_path(tmp_path, capsys):
    assert main([str(tmp_path / "absent.q")]) == 2
    assert "error" in capsys.readouterr().err


def test_exit_two_on_syntax_error(tmp_path, capsys):
    (tmp_path / "broken.py").write_text("def f(:\n")
    assert main([str(tmp_path)]) == 2
    assert "syntax error" in capsys.readouterr().err


def test_exit_three_on_internal_engine_error(tmp_path, capsys,
                                             monkeypatch):
    import repro.devtools.engine.runner as runner

    def boom(*args, **kwargs):
        raise RuntimeError("worklist exploded")

    # main() imports run_paths from the runner module at call time, so
    # patching the module attribute is enough to simulate a crash.
    monkeypatch.setattr(runner, "run_paths", boom)
    (tmp_path / "ok.py").write_text(CLEAN)
    assert main([str(tmp_path), "--no-cache"]) == 3
    err = capsys.readouterr().err
    assert "internal engine error" in err
    assert "worklist exploded" in err


def test_engine_error_not_conflated_with_findings(tmp_path, capsys):
    # the three exit codes are distinct outcomes of the same invocation
    # shape: clean -> 0, findings -> 1 (covered above), crash -> 3
    (tmp_path / "bad.py").write_text(DIRTY)
    assert main([str(tmp_path), "--no-cache"]) == 1
    capsys.readouterr()
    (tmp_path / "bad.py").write_text(CLEAN)
    assert main([str(tmp_path), "--no-cache"]) == 0


def test_sarif_report_structure(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text(DIRTY)
    assert main([str(tmp_path), "--no-cache", "--format", "sarif"]) == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["version"] == "2.1.0"
    assert "sarif-schema-2.1.0" in doc["$schema"]
    (run,) = doc["runs"]
    driver = run["tool"]["driver"]
    assert driver["name"] == "reprolint"
    rule_ids = {rule["id"] for rule in driver["rules"]}
    # the catalog covers every registered code, including the numeric
    # RPL8xx family, not just the codes that fired
    assert {"RPL810", "RPL811", "RPL812", "RPL813", "RPL814"} <= rule_ids
    results = run["results"]
    assert {r["ruleId"] for r in results} == {"RPL101", "RPL301", "RPL601"}
    for result in results:
        assert result["ruleId"] in rule_ids
        assert result["level"] == "warning"
        loc = result["locations"][0]["physicalLocation"]
        assert loc["artifactLocation"]["uri"].endswith("bad.py")
        assert loc["region"]["startLine"] >= 1
        assert "reprolint/v1" in result["partialFingerprints"]


def test_sarif_fingerprints_stable_across_line_shifts(tmp_path, capsys):
    bad = tmp_path / "bad.py"

    def fingerprints():
        assert main([str(tmp_path), "--no-cache", "--format",
                     "sarif"]) == 1
        doc = json.loads(capsys.readouterr().out)
        return {r["ruleId"]: r["partialFingerprints"]["reprolint/v1"]
                for r in doc["runs"][0]["results"]}

    bad.write_text(DIRTY)
    before = fingerprints()
    bad.write_text("# a comment pushing every finding down\n\n" + DIRTY)
    after = fingerprints()
    assert before == after


def test_sarif_empty_run_is_valid(tmp_path, capsys):
    (tmp_path / "ok.py").write_text(CLEAN)
    assert main([str(tmp_path), "--no-cache", "--format", "sarif"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["runs"][0]["results"] == []


def test_list_checkers(capsys):
    assert main(["--list-checkers"]) == 0
    out = capsys.readouterr().out
    for name in ("rng-determinism", "layering", "numerical-safety",
                 "exception-hygiene", "api-completeness",
                 "mutable-defaults"):
        assert name in out


def test_at_least_six_checkers_registered():
    assert len(all_checkers()) >= 6


def test_reprolint_runs_clean_on_the_repo_itself():
    """The acceptance gate: src/repro carries zero violations."""
    package_dir = Path(repro.__file__).parent
    violations, files_checked = lint_paths([package_dir])
    assert violations == [], "\n".join(v.render() for v in violations)
    assert files_checked > 70
