"""Incremental-cache behaviour: warm-run speedup over the real tree,
result equality, content/config/selection invalidation, and the
``--no-cache`` escape hatch."""

from __future__ import annotations

import time
from pathlib import Path

from repro.devtools import LintConfig
from repro.devtools.engine import (ENGINE_VERSION, LintCache,
                                   config_fingerprint, run_paths)
from repro.devtools.engine.cache import file_key
from repro.devtools.framework import config_with

SRC_REPRO = Path(__file__).resolve().parents[3] / "src" / "repro"


def make_tree(tmp_path: Path) -> Path:
    tree = tmp_path / "proj"
    pkg = tree / "pkg"
    pkg.mkdir(parents=True)
    (pkg / "__init__.py").write_text("")
    (pkg / "alpha.py").write_text("def a():\n    return 1\n")
    (pkg / "beta.py").write_text("from pkg.alpha import a\n\n"
                                 "def b():\n    return a()\n")
    (pkg / "gamma.py").write_text("def c(path):\n"
                                  "    fh = open(path)\n"
                                  "    data = fh.read(1)\n"
                                  "    return data\n")
    return tree


def lint(tree, cache_dir, config=None, enabled=None):
    return run_paths([tree], config or LintConfig(),
                     enabled=enabled, cache_dir=cache_dir)


# -- the acceptance benchmark ------------------------------------------


def test_warm_cache_at_least_2x_faster_over_src_repro(tmp_path):
    cache_dir = tmp_path / "cache"

    t0 = time.perf_counter()
    cold = run_paths([SRC_REPRO], LintConfig(), cache_dir=cache_dir)
    t1 = time.perf_counter()
    warm = run_paths([SRC_REPRO], LintConfig(), cache_dir=cache_dir)
    t2 = time.perf_counter()

    assert cold.cache_misses == cold.files_checked > 0
    assert warm.cache_hits == warm.files_checked == cold.files_checked
    assert warm.cache_misses == 0
    assert warm.project_cache_hit
    assert warm.violations == cold.violations
    cold_s, warm_s = t1 - t0, t2 - t1
    assert cold_s >= 2 * warm_s, (
        f"warm run not fast enough: cold={cold_s:.3f}s warm={warm_s:.3f}s")


# -- invalidation ------------------------------------------------------


def test_comment_edit_misses_one_file_but_keeps_project_pass(tmp_path):
    tree = make_tree(tmp_path)
    cache_dir = tmp_path / "cache"
    lint(tree, cache_dir)

    target = tree / "pkg" / "alpha.py"
    target.write_text(target.read_text() + "# trailing comment\n")
    warm = lint(tree, cache_dir)

    assert warm.cache_misses == 1
    assert warm.cache_hits == warm.files_checked - 1
    # the comment changes the content hash but not the module summary,
    # so the whole-program pass is still served from the cache
    assert warm.project_cache_hit


def test_new_definition_invalidates_the_project_pass(tmp_path):
    tree = make_tree(tmp_path)
    cache_dir = tmp_path / "cache"
    lint(tree, cache_dir)

    target = tree / "pkg" / "alpha.py"
    target.write_text(target.read_text() + "\ndef extra():\n    return 2\n")
    warm = lint(tree, cache_dir)

    assert warm.cache_misses == 1
    assert not warm.project_cache_hit


def test_config_change_invalidates_everything(tmp_path):
    tree = make_tree(tmp_path)
    cache_dir = tmp_path / "cache"
    cold = lint(tree, cache_dir)
    warm = lint(tree, cache_dir,
                config=config_with(
                    atomic_write_module_prefixes=("pkg",)))
    assert cold.cache_misses == cold.files_checked
    assert warm.cache_misses == warm.files_checked


def test_checker_selection_is_part_of_the_key(tmp_path):
    tree = make_tree(tmp_path)
    cache_dir = tmp_path / "cache"
    lint(tree, cache_dir, enabled=["resource-lifecycle"])
    warm = lint(tree, cache_dir, enabled=["rng-stream-flow"])
    assert warm.cache_misses == warm.files_checked


def test_no_cache_mode_reports_no_hits(tmp_path):
    tree = make_tree(tmp_path)
    first = lint(tree, None)
    second = lint(tree, None)
    assert first.cache_hits == second.cache_hits == 0
    assert first.cache_misses == second.cache_misses == 0
    assert not second.project_cache_hit
    assert first.violations == second.violations


def test_cached_violations_replay_identically(tmp_path):
    tree = make_tree(tmp_path)
    cache_dir = tmp_path / "cache"
    cold = lint(tree, cache_dir, enabled=["resource-lifecycle"])
    warm = lint(tree, cache_dir, enabled=["resource-lifecycle"])
    assert [v.code for v in cold.violations] == ["RPL320"]
    assert warm.violations == cold.violations
    assert warm.cache_hits == warm.files_checked


def _numeric_tree(tmp_path: Path) -> tuple[Path, Path]:
    tree = tmp_path / "nproj"
    pkg = tree / "npkg"
    pkg.mkdir(parents=True)
    (pkg / "__init__.py").write_text("")
    target = pkg / "cast.py"
    target.write_text("import numpy as np\n\n"
                      "__all__ = ['pack']\n\n\n"
                      "def pack(max_id):\n"
                      "    return np.int32(max_id)\n")
    (pkg / "other.py").write_text("__all__ = ['untouched']\n\n\n"
                                  "def untouched():\n    return 0\n")
    return tree, target


NUMERIC_CFG = config_with(numeric_module_prefixes=("npkg",),
                          default_dtype_module_prefixes=("npkg",))


def test_assume_pragma_edit_invalidates_file_and_project_pass(tmp_path):
    tree, target = _numeric_tree(tmp_path)
    cache_dir = tmp_path / "cache"
    cold = lint(tree, cache_dir, config=NUMERIC_CFG)
    assert [v.code for v in cold.violations] == ["RPL810"]

    # adding the assume changes the file content *and* the module's
    # numeric summary (its assume table), so the project pass must
    # rerun — a cached project result would keep the stale finding
    target.write_text(
        "import numpy as np\n\n"
        "__all__ = ['pack']\n\n\n"
        "def pack(max_id):\n"
        "    small = max_id  # reprolint: assume(small, 0, 1000)\n"
        "    return np.int32(small)\n")
    warm = lint(tree, cache_dir, config=NUMERIC_CFG)

    assert warm.cache_misses == 1
    assert warm.cache_hits == warm.files_checked - 1
    assert not warm.project_cache_hit
    assert warm.violations == []


def test_interval_seed_change_invalidates_every_file(tmp_path):
    tree, _target = _numeric_tree(tmp_path)
    cache_dir = tmp_path / "cache"
    cold = lint(tree, cache_dir, config=NUMERIC_CFG)
    assert [v.code for v in cold.violations] == ["RPL810"]

    seeds = dict(NUMERIC_CFG.interval_seeds)
    seeds["max_id"] = (0, 1000)
    warm = lint(tree, cache_dir,
                config=config_with(numeric_module_prefixes=("npkg",),
                                   default_dtype_module_prefixes=("npkg",),
                                   interval_seeds=seeds))

    # the seed table is part of the config fingerprint: every file
    # misses and the finding disappears under the tightened bound
    assert warm.cache_misses == warm.files_checked
    assert warm.violations == []


def test_interval_seeds_in_config_fingerprint(tmp_path):
    seeds = dict(LintConfig().interval_seeds)
    seeds["scale"] = (0, 40)
    assert config_fingerprint(LintConfig()) != config_fingerprint(
        config_with(interval_seeds=seeds))


# -- key construction --------------------------------------------------


def test_file_key_depends_on_content_config_and_version(tmp_path):
    path = tmp_path / "m.py"
    path.write_text("x = 1\n")
    fp = config_fingerprint(LintConfig())
    base = file_key(path, path.read_bytes(), fp, "sel")
    assert base == file_key(path, path.read_bytes(), fp, "sel")
    assert base != file_key(path, b"x = 2\n", fp, "sel")
    assert base != file_key(path, path.read_bytes(),
                            config_fingerprint(config_with(
                                atomic_write_module_prefixes=("z",))), "sel")
    assert base != file_key(path, path.read_bytes(), fp, "other-sel")
    assert ENGINE_VERSION in base or len(base) == 64  # hashed in


def test_config_fingerprint_is_order_insensitive(tmp_path):
    a = config_with(disabled_codes=frozenset({"RPL101", "RPL320"}))
    b = config_with(disabled_codes=frozenset({"RPL320", "RPL101"}))
    assert config_fingerprint(a) == config_fingerprint(b)


def test_cache_survives_reload_and_prunes_unseen_entries(tmp_path):
    cache_dir = tmp_path / "cache"
    cache = LintCache(cache_dir)
    cache.put("k1", {"skip": False, "violations": [], "suppressed": [],
                     "summary": {}})
    cache.put("k2", {"skip": True})
    cache.save()

    reloaded = LintCache(cache_dir)
    assert reloaded.get("k1") is not None
    assert reloaded.get("k2") == {"skip": True}

    # a save that only touched k1 prunes the stale k2 record
    third = LintCache(cache_dir)
    assert third.get("k1") is not None
    third.save()
    fourth = LintCache(cache_dir)
    assert fourth.get("k2") is None
