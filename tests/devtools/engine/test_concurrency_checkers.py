"""Flagging and passing fixtures for the RPL6xx concurrency family:
thread-shared-state (RPL610), thread-lifecycle (RPL611), and the
whole-program spawn-hygiene rules (RPL620/621), plus the summary
extensions (spawn sites, env reads) they are built on."""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.devtools import LintConfig, lint_file
from repro.devtools.engine import ModuleSummary, run_paths
from repro.devtools.framework import SourceFile, config_with
from repro.devtools.engine.project import summarize_source


def run(tmp_path: Path, checker, code, config=None, name="snippet"):
    path = tmp_path / f"{name}.py"
    path.write_text(textwrap.dedent(code))
    enabled = checker if isinstance(checker, list) else [checker]
    return lint_file(path, config or LintConfig(), enabled=enabled)


def codes(violations):
    return sorted({v.code for v in violations})


# ---------------------------------------------------------------------------
# thread-shared-state (RPL610)
# ---------------------------------------------------------------------------

UNGUARDED_HANDOFF = """
    import threading

    class Sink:
        def __init__(self):
            self._error = None
            self._thread = threading.Thread(target=self._run)
            self._thread.start()

        def _run(self):
            self._error = ValueError("boom")

        def check(self):
            error, self._error = self._error, None
            if error is not None:
                raise error
"""


def test_rpl610_flags_unguarded_cross_thread_write(tmp_path):
    found = run(tmp_path, "thread-shared-state", UNGUARDED_HANDOFF)
    assert codes(found) == ["RPL610"]
    assert "_error" in found[0].message


def test_rpl610_passes_when_every_write_is_locked(tmp_path):
    found = run(tmp_path, "thread-shared-state", """
        import threading

        class Sink:
            def __init__(self):
                self._error = None
                self._error_lock = threading.Lock()
                self._thread = threading.Thread(target=self._run)
                self._thread.start()

            def _run(self):
                with self._error_lock:
                    self._error = ValueError("boom")

            def check(self):
                with self._error_lock:
                    error, self._error = self._error, None
                if error is not None:
                    raise error
    """)
    assert found == []


def test_rpl610_passes_when_attr_is_thread_side_only(tmp_path):
    found = run(tmp_path, "thread-shared-state", """
        import threading

        class Worker:
            def __init__(self):
                self._count = 0
                self._thread = threading.Thread(target=self._run)

            def _run(self):
                self._count += 1

            def close(self):
                self._thread.join()
    """)
    assert found == []


def test_rpl610_follows_self_calls_into_thread_reachable_code(tmp_path):
    found = run(tmp_path, "thread-shared-state", """
        import threading

        class Worker:
            def __init__(self):
                self._state = None
                self._thread = threading.Thread(target=self._run)

            def _run(self):
                self._step()

            def _step(self):
                self._state = 1

            def reset(self):
                self._state = None
    """)
    assert codes(found) == ["RPL610"]


def test_rpl610_ignores_classes_without_threads(tmp_path):
    found = run(tmp_path, "thread-shared-state", """
        class Plain:
            def __init__(self):
                self._value = 0

            def bump(self):
                self._value += 1

            def reset(self):
                self._value = 0
    """)
    assert found == []


# ---------------------------------------------------------------------------
# thread-lifecycle (RPL611)
# ---------------------------------------------------------------------------


def test_rpl611_flags_started_thread_without_join(tmp_path):
    found = run(tmp_path, "thread-lifecycle", """
        import threading

        def fire_and_forget(task):
            t = threading.Thread(target=task)
            t.start()
    """)
    assert codes(found) == ["RPL611"]


def test_rpl611_flags_join_on_only_one_branch(tmp_path):
    found = run(tmp_path, "thread-lifecycle", """
        import threading

        def sometimes(task, wait):
            t = threading.Thread(target=task)
            t.start()
            if wait:
                t.join()
    """)
    assert codes(found) == ["RPL611"]


def test_rpl611_passes_when_joined(tmp_path):
    found = run(tmp_path, "thread-lifecycle", """
        import threading

        def supervised(task):
            t = threading.Thread(target=task)
            t.start()
            try:
                work = 1
            finally:
                t.join()
            return work
    """)
    assert found == []


def test_rpl611_passes_when_thread_escapes(tmp_path):
    found = run(tmp_path, "thread-lifecycle", """
        import threading

        def handoff(task, registry):
            t = threading.Thread(target=task)
            t.start()
            registry.append(t)

        def returned(task):
            t = threading.Thread(target=task)
            t.start()
            return t
    """)
    assert found == []


def test_rpl611_ignores_attribute_stored_threads(tmp_path):
    # ``self._thread = Thread(...)`` hands the lifetime to the object
    # (closed elsewhere); no local fact, no flag.
    found = run(tmp_path, "thread-lifecycle", """
        import threading

        class Sink:
            def __init__(self):
                self._thread = threading.Thread(target=self._run)
                self._thread.start()

            def _run(self):
                return None
    """)
    assert found == []


# ---------------------------------------------------------------------------
# spawn-hygiene (RPL620/621)
# ---------------------------------------------------------------------------

SPAWN_CFG = config_with(spawn_module_prefixes=("pkg.dist",))


def write_module(tmp_path: Path, module: str, code: str) -> Path:
    parts = module.split(".")
    directory = tmp_path
    for pkg in parts[:-1]:
        directory = directory / pkg
        directory.mkdir(exist_ok=True)
        (directory / "__init__.py").touch()
    path = directory / f"{parts[-1]}.py"
    path.write_text(textwrap.dedent(code))
    return path


def lint_project(tmp_path, modules, config=SPAWN_CFG):
    for module, code in modules.items():
        write_module(tmp_path, module, code)
    run_result = run_paths([tmp_path], config,
                           enabled=["spawn-hygiene"], cache_dir=None)
    return run_result.violations


def test_rpl620_flags_lambda_worker(tmp_path):
    violations = lint_project(tmp_path, {
        "pkg.dist.sched": """
            import multiprocessing as mp

            def launch():
                p = mp.Process(target=lambda: 1)
                p.start()
                p.join()
        """})
    assert codes(violations) == ["RPL620"]


def test_rpl620_flags_nested_def_worker(tmp_path):
    violations = lint_project(tmp_path, {
        "pkg.dist.sched": """
            import multiprocessing as mp

            def launch(task):
                def inner(item):
                    return item
                p = mp.Process(target=inner, args=(task,))
                p.start()
                p.join()
        """})
    assert codes(violations) == ["RPL620"]


def test_rpl620_passes_module_level_worker(tmp_path):
    violations = lint_project(tmp_path, {
        "pkg.dist.sched": """
            import multiprocessing as mp

            def _worker(task):
                return task

            def launch(task):
                p = mp.Process(target=_worker, args=(task,))
                p.start()
                p.join()
        """})
    assert violations == []


def test_rpl620_out_of_scope_module_is_quiet(tmp_path):
    violations = lint_project(tmp_path, {
        "pkg.app": """
            import multiprocessing as mp

            def launch():
                p = mp.Process(target=lambda: 1)
                p.start()
                p.join()
        """})
    assert violations == []


def test_rpl621_flags_env_read_reachable_from_worker(tmp_path):
    violations = lint_project(tmp_path, {
        "pkg.dist.sched": """
            import multiprocessing as mp
            import os

            def _helper():
                return os.environ.get("TRILLIONG_DEPTH", "4")

            def _worker(task):
                return _helper()

            def launch(task):
                p = mp.Process(target=_worker, args=(task,))
                p.start()
                p.join()
        """})
    assert codes(violations) == ["RPL621"]
    assert "TRILLIONG_DEPTH" in violations[0].message


def test_rpl621_flags_environ_subscript(tmp_path):
    violations = lint_project(tmp_path, {
        "pkg.dist.sched": """
            import multiprocessing as mp
            import os

            def _worker(task):
                return os.environ["HOME"]

            def launch(task):
                p = mp.Process(target=_worker, args=(task,))
                p.start()
                p.join()
        """})
    assert codes(violations) == ["RPL621"]


def test_rpl621_passes_env_read_outside_worker_closure(tmp_path):
    violations = lint_project(tmp_path, {
        "pkg.dist.sched": """
            import multiprocessing as mp
            import os

            def _worker(task):
                return task

            def launch(task):
                depth = os.environ.get("TRILLIONG_DEPTH", "4")
                p = mp.Process(target=_worker, args=(task, depth))
                p.start()
                p.join()
        """})
    assert violations == []


def test_rpl621_only_flags_reads_inside_scoped_modules(tmp_path):
    # A worker may call into layers outside ``spawn_module_prefixes``
    # (e.g. telemetry toggles); those env reads are that layer's policy.
    violations = lint_project(tmp_path, {
        "pkg.util.flags": """
            import os

            def enabled():
                return os.getenv("PKG_FLAG") == "1"
        """,
        "pkg.dist.sched": """
            import multiprocessing as mp
            from pkg.util.flags import enabled

            def _worker(task):
                return enabled()

            def launch(task):
                p = mp.Process(target=_worker, args=(task,))
                p.start()
                p.join()
        """})
    assert violations == []


# ---------------------------------------------------------------------------
# summary extensions: spawn sites and env reads
# ---------------------------------------------------------------------------


def summarize(path: Path) -> ModuleSummary:
    return summarize_source(SourceFile.parse(path))


def test_summary_records_spawn_sites_and_env_reads(tmp_path):
    path = write_module(tmp_path, "pkg.dist.sched", """
        import multiprocessing as mp
        import os

        def _worker(task):
            return os.getenv("PKG_MODE")

        def launch(task):
            home = os.environ["HOME"]
            p = mp.Process(target=_worker, args=(task, home))
            p.start()
            p.join()
    """)
    summary = summarize(path)
    assert [(q, var) for q, _line, var in summary.env_reads] == [
        ("_worker", "PKG_MODE"), ("launch", "HOME")]
    (site,) = summary.spawn_sites
    assert site["function"] == "launch"
    assert site["callee"] == "mp.Process"
    assert "_worker" in site["workers"]


def test_summary_spawn_and_env_survive_json_round_trip(tmp_path):
    path = write_module(tmp_path, "pkg.dist.sched", """
        import multiprocessing as mp
        import os

        def _worker(task):
            return os.getenv("PKG_MODE")

        def launch(task):
            p = mp.Process(target=_worker, args=(task,))
            p.start()
            p.join()
    """)
    summary = summarize(path)
    doc = summary.to_json()
    rebuilt = ModuleSummary.from_json(doc)
    assert rebuilt.env_reads == summary.env_reads
    assert rebuilt.spawn_sites == summary.spawn_sites


def test_summary_from_json_tolerates_pre_21_documents(tmp_path):
    path = write_module(tmp_path, "pkg.mod", "X = 1\n")
    doc = summarize(path).to_json()
    del doc["env_reads"]
    del doc["spawn_sites"]
    rebuilt = ModuleSummary.from_json(doc)
    assert rebuilt.env_reads == []
    assert rebuilt.spawn_sites == []
