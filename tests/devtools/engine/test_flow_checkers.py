"""Flagging and passing fixtures for the flow-sensitive checker
families (RPL110/111 rng-stream-flow, RPL310/311 atomic-write, RPL320
resource-lifecycle), plus the v1-vs-v2 regression tests: cases the old
syntactic rules provably miss."""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from repro.devtools import LintConfig, lint_file
from repro.devtools.framework import config_with

V1_CHECKERS = ["rng-determinism", "layering", "numerical-safety",
               "exception-hygiene", "api-completeness", "block-streaming",
               "telemetry", "mutable-defaults"]


def run(tmp_path: Path, checker, code, config=None, name="snippet"):
    path = tmp_path / f"{name}.py"
    path.write_text(textwrap.dedent(code))
    enabled = checker if isinstance(checker, list) else [checker]
    return lint_file(path, config or LintConfig(), enabled=enabled)


def codes(violations):
    return sorted({v.code for v in violations})


ATOMIC_CFG = config_with(atomic_write_module_prefixes=("snippet",))


# ---------------------------------------------------------------------------
# rng-stream-flow (RPL110/111)
# ---------------------------------------------------------------------------

SHIP_THEN_DRAW = """
    from multiprocessing import Process
    from repro.core.rng import stream

    def parent(seed, queue, worker):
        rng = stream(seed, 0, 1)
        proc = Process(target=worker, args=(rng, queue))
        proc.start()
        return rng.random(8)
"""


def test_rpl110_flags_stream_drawn_after_shipping(tmp_path):
    found = run(tmp_path, "rng-stream-flow", SHIP_THEN_DRAW)
    assert codes(found) == ["RPL110"]


def test_rpl110_passes_when_seed_ships_instead_of_stream(tmp_path):
    found = run(tmp_path, "rng-stream-flow", """
        from multiprocessing import Process
        from repro.core.rng import stream

        def parent(seed, queue, worker):
            proc = Process(target=worker, args=(seed, queue))
            proc.start()
            rng = stream(seed, 0, 1)
            return rng.random(8)
    """)
    assert found == []


def test_rpl110_passes_when_shipped_stream_is_never_drawn(tmp_path):
    found = run(tmp_path, "rng-stream-flow", """
        from multiprocessing import Process
        from repro.core.rng import stream

        def parent(seed, queue, worker):
            rng = stream(seed, 0, 1)
            proc = Process(target=worker, args=(rng, queue))
            proc.start()
            proc.join()
    """)
    assert found == []


def test_rpl111_flags_same_seed_derived_twice_on_one_path(tmp_path):
    found = run(tmp_path, "rng-stream-flow", """
        from repro.core.rng import stream

        def pair(seed):
            a = stream(seed, 0, 1)
            b = stream(seed, 0, 1)
            return a, b
    """)
    assert codes(found) == ["RPL111"]


def test_rpl111_passes_for_mutually_exclusive_branches(tmp_path):
    # both derivations are textually identical, but no execution path
    # runs both — only a path-sensitive analysis can tell the difference
    found = run(tmp_path, "rng-stream-flow", """
        from repro.core.rng import stream

        def pick(seed, flag):
            if flag:
                rng = stream(seed, 0, 1)
            else:
                rng = stream(seed, 0, 1)
            return rng
    """)
    assert found == []


def test_rpl111_passes_for_distinct_arguments(tmp_path):
    found = run(tmp_path, "rng-stream-flow", """
        from repro.core.rng import stream

        def pair(seed):
            a = stream(seed, 0, 1)
            b = stream(seed, 0, 2)
            return a, b
    """)
    assert found == []


def test_v1_provably_misses_shipped_stream_redraw(tmp_path):
    """The v2 regression anchor: every v1 syntactic rule passes the
    ship-then-draw hazard (``stream()`` *is* the blessed constructor),
    while the dataflow analysis catches the forked state."""
    v1 = run(tmp_path, V1_CHECKERS, SHIP_THEN_DRAW)
    v2 = run(tmp_path, "rng-stream-flow", SHIP_THEN_DRAW)
    # v1 has nothing to say about RNG misuse here (RPL1xx is silent);
    # only unrelated style codes may appear
    assert [v for v in v1 if v.code.startswith("RPL1")] == []
    assert codes(v2) == ["RPL110"]


# ---------------------------------------------------------------------------
# atomic-write (RPL310/311)
# ---------------------------------------------------------------------------

FSYNC_ONE_PATH = """
    import os

    def save(path, data, fast):
        staging = path + ".new"
        fh = open(staging, "wb")
        fh.write(data)
        if not fast:
            fh.flush()
            os.fsync(fh.fileno())
        fh.close()
        os.replace(staging, path)
"""


def test_rpl310_flags_rename_without_fsync(tmp_path):
    found = run(tmp_path, "atomic-write", """
        import os

        def save(path, data):
            staging = path + ".new"
            fh = open(staging, "wb")
            fh.write(data)
            fh.close()
            os.replace(staging, path)
    """, config=ATOMIC_CFG)
    assert codes(found) == ["RPL310"]


def test_rpl310_flags_fsync_on_one_path_only(tmp_path):
    found = run(tmp_path, "atomic-write", FSYNC_ONE_PATH,
                config=ATOMIC_CFG)
    assert codes(found) == ["RPL310"]


def test_rpl310_passes_full_protocol(tmp_path):
    found = run(tmp_path, "atomic-write", """
        import os

        def save(path, data):
            staging = path + ".new"
            fh = open(staging, "wb")
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
            fh.close()
            os.replace(staging, path)
    """, config=ATOMIC_CFG)
    assert found == []


def test_rpl310_silent_outside_configured_modules(tmp_path):
    found = run(tmp_path, "atomic-write", FSYNC_ONE_PATH)
    assert found == []


def test_rpl311_flags_leakable_temp_file(tmp_path):
    found = run(tmp_path, "atomic-write", """
        import os

        def spill(path, blocks, encode):
            tmp = path + ".partial"
            fh = open(tmp, "wb")
            fh.write(encode(blocks))
            fh.flush()
            os.fsync(fh.fileno())
            fh.close()
            os.replace(tmp, path)
    """, config=ATOMIC_CFG)
    assert "RPL311" in codes(found)


def test_rpl311_passes_try_finally_unlink(tmp_path):
    found = run(tmp_path, "atomic-write", """
        import os

        def spill(path, blocks, encode):
            tmp = path.with_suffix(".partial")
            try:
                fh = tmp.open("wb")
                fh.write(encode(blocks))
                fh.flush()
                os.fsync(fh.fileno())
                fh.close()
                tmp.replace(path)
            finally:
                tmp.unlink(missing_ok=True)
    """, config=ATOMIC_CFG)
    assert found == []


def test_str_replace_is_not_a_rename(tmp_path):
    found = run(tmp_path, "atomic-write", """
        def clean(name):
            label = name + "-raw"
            return label.replace("-raw", "")
    """, config=ATOMIC_CFG)
    assert found == []


def test_v1_provably_misses_partial_fsync_path(tmp_path):
    """A syntactic scan sees ``flush``+``fsync``+``replace`` all present
    and stays quiet; only walking the CFG shows the ``fast`` path
    reaches the rename with an unfsynced handle."""
    v1 = run(tmp_path, V1_CHECKERS, FSYNC_ONE_PATH, config=ATOMIC_CFG)
    v2 = run(tmp_path, "atomic-write", FSYNC_ONE_PATH, config=ATOMIC_CFG)
    assert [v for v in v1 if v.code.startswith("RPL3")] == []
    assert codes(v2) == ["RPL310"]


# ---------------------------------------------------------------------------
# resource-lifecycle (RPL320)
# ---------------------------------------------------------------------------


def test_rpl320_flags_handle_leaked_on_early_return(tmp_path):
    found = run(tmp_path, "resource-lifecycle", """
        def read_header(path, strict):
            fh = open(path, "rb")
            magic = fh.read(4)
            if magic != b"TRIL":
                return None
            body = fh.read()
            fh.close()
            return body
    """)
    assert codes(found) == ["RPL320"]


RPL320_PASSES = [
    # with-statement manages the handle
    """
    def read(path):
        with open(path, "rb") as fh:
            return fh.read()
    """,
    # try/finally closes on every path
    """
    def read(path, strict):
        fh = open(path, "rb")
        try:
            if strict:
                return fh.read(4)
            return fh.read()
        finally:
            fh.close()
    """,
    # returned handle escapes to the caller
    """
    def open_sink(path):
        fh = open(path, "wb")
        return fh
    """,
    # handle passed on: ownership transferred
    """
    def wrap(path, adopt):
        fh = open(path, "rb")
        return adopt(fh)
    """,
    # closed on both arms of a branch
    """
    def read(path, strict):
        fh = open(path, "rb")
        if strict:
            data = fh.read(4)
            fh.close()
        else:
            data = fh.read()
            fh.close()
        return data
    """,
]


@pytest.mark.parametrize("code", RPL320_PASSES)
def test_rpl320_passes(tmp_path, code):
    assert run(tmp_path, "resource-lifecycle", code) == []


def test_rpl320_pragma_suppression(tmp_path):
    found = run(tmp_path, "resource-lifecycle", """
        def keep_open(path):
            fh = open(path, "rb")  # reprolint: disable=RPL320
            magic = fh.read(4)
            return magic
    """)
    assert found == []
