"""Unit tests for the numeric abstract domains (dtype lattice, interval
arithmetic + grid widening, constant evaluation, assume scanning)."""

from __future__ import annotations

import ast
import math

import pytest

from repro.devtools.engine.domains import (
    DTYPES, AbsVal, AssumeRecord, GRID, Interval, const_value,
    dtype_range, module_constants, parse_dtype, promote, scan_assumes)


# ---------------------------------------------------------------------------
# dtype lattice
# ---------------------------------------------------------------------------

def test_dtype_table_ranges():
    assert dtype_range("int32") == (-2 ** 31, 2 ** 31 - 1)
    assert dtype_range("uint64") == (0, 2 ** 64 - 1)
    assert dtype_range("bool") == (0, 1)
    assert dtype_range("float64") == (-math.inf, math.inf)


@pytest.mark.parametrize("a, b, expected", [
    (None, "int32", None),             # unknown absorbs
    ("int32", None, None),
    ("int32", "int32", "int32"),
    ("int32", "int64", "int64"),       # same kind: max bits
    ("uint8", "uint32", "uint32"),
    ("bool", "uint16", "uint16"),      # bool absorbs into the other
    ("int32", "uint32", "int64"),      # signed must hold unsigned range
    ("int64", "uint64", "float64"),    # numpy's unhappy corner
    ("float32", "float64", "float64"),
    ("int64", "float32", "float64"),   # wide int + narrow float
    ("uint8", "float32", "float32"),
])
def test_promote(a, b, expected):
    assert promote(a, b) == expected
    assert promote(b, a) == expected


@pytest.mark.parametrize("src, expected", [
    ("np.int32", "int32"),
    ("numpy.uint64", "uint64"),
    ("'int16'", "int16"),
    ("'<u4'", "uint32"),
    ("'>i8'", "int64"),
    ("bool", "bool"),
    ("int", "int64"),
    ("float", "float64"),
    ("np.dtype('uint8')", "uint8"),
    ("np.intp", "int64"),
    ("some_variable", None),
    ("'not-a-dtype'", None),
])
def test_parse_dtype(src, expected):
    expr = ast.parse(src, mode="eval").body
    assert parse_dtype(expr) == expected


# ---------------------------------------------------------------------------
# intervals
# ---------------------------------------------------------------------------

def test_interval_arithmetic_exact():
    a = Interval(2, 10)
    b = Interval(-3, 4)
    assert a + b == Interval(-1, 14)
    assert a - b == Interval(-2, 13)
    assert a * b == Interval(-30, 40)
    assert -a == Interval(-10, -2)


def test_interval_division_spanning_zero_is_unknown():
    assert Interval(1, 10).floordiv(Interval(-1, 1)) is None
    assert Interval(1, 10).truediv(Interval(0, 5)) is None
    assert Interval(0, 100).floordiv(Interval(2, 4)) == Interval(0, 50)


def test_interval_mod_requires_positive_divisor():
    assert Interval(0, 100).mod(Interval(8, 8)) == Interval(0, 7)
    assert Interval(-5, 100).mod(Interval(8, 8)) == Interval(-7, 7)
    assert Interval(0, 100).mod(Interval(0, 8)) is None
    assert Interval(0, 100).mod(Interval(1, math.inf)) is None


def test_interval_shifts_and_bits():
    assert Interval(1, 1).lshift(Interval(48, 48)) == Interval(2 ** 48,
                                                               2 ** 48)
    assert Interval(0, 2 ** 48).rshift(Interval(16, 16)) == \
        Interval(0, 2 ** 32)
    assert Interval(0, 255).bitand(Interval(0, 15)) == Interval(0, 15)
    bitor = Interval(0, 5).bitor(Interval(0, 9))
    assert bitor.lo == 0 and bitor.hi == 15
    assert Interval(-1, 5).bitand(Interval(0, 15)) is None


def test_interval_infinity_guards():
    top = Interval(-math.inf, math.inf)
    assert (top + Interval(1, 1)) == top
    assert (Interval(0, 0) * top) == Interval(0, 0)   # 0 * inf -> 0
    assert (Interval(1, 2) * top) == top


def test_widening_snaps_outward_onto_grid():
    widened = Interval(3, 1000).widened()
    assert widened.lo <= 3 and widened.hi >= 1000
    assert widened.lo in GRID and widened.hi in GRID
    # already-on-grid endpoints stay put (widening is idempotent)
    assert widened.widened() == widened


def test_grid_contains_the_dtype_boundaries():
    for value in (0, 1, 2 ** 31 - 1, 2 ** 32, 2 ** 48 - 1, 2 ** 63,
                  -(2 ** 31), math.inf):
        assert value in GRID


def test_clamp_and_within():
    assert Interval(-5, 100).clamp(0, 10) == Interval(0, 10)
    assert Interval(3, 4).within(0, 10)
    assert not Interval(3, 40).within(0, 10)


# ---------------------------------------------------------------------------
# abstract values
# ---------------------------------------------------------------------------

def test_absval_hull_poisons_unknown_interval():
    known = AbsVal("int64", Interval(0, 10))
    unknown = AbsVal("int64", None)
    assert known.hull(unknown).interval is None
    assert known.hull(known).interval == Interval(0, 10)


def test_absval_hull_keeps_origin_only_when_equal():
    a = AbsVal("float64", Interval(0, 1), "uniform")
    b = AbsVal("float64", Interval(0, 1), "uniform")
    c = AbsVal("float64", Interval(0, 1), "")
    assert a.hull(b).origin == "uniform"
    assert a.hull(c).origin == ""


# ---------------------------------------------------------------------------
# constant evaluation
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("src, expected", [
    ("(1 << 48) - 1", 2 ** 48 - 1),
    ("2 ** 32", 2 ** 32),
    ("-7", -7),
    ("3 * 4 + 1", 13),
    ("0xFFFFFFFF", 0xFFFFFFFF),
    ("1 / 0", None),
    ("2 ** 10_000", None),        # guarded: exponent too large
    ("unknown_name", None),
])
def test_const_value(src, expected):
    expr = ast.parse(src, mode="eval").body
    assert const_value(expr) == expected


def test_const_value_uses_environment():
    expr = ast.parse("SCALE + 1", mode="eval").body
    assert const_value(expr, {"SCALE": 33}) == 34


def test_module_constants_follow_reassignment():
    tree = ast.parse(
        "MAX_ID = (1 << 48) - 1\n"
        "SCALE = 33\n"
        "SCALE = read_config()\n"      # no longer a constant
        "DERIVED = MAX_ID + 1\n")
    env = module_constants(tree)
    assert env["MAX_ID"] == 2 ** 48 - 1
    assert "SCALE" not in env
    assert env["DERIVED"] == 2 ** 48


# ---------------------------------------------------------------------------
# assume pragmas
# ---------------------------------------------------------------------------

def test_scan_assumes_parses_bounds_and_constants():
    text = (
        "LIMIT = 2 ** 32 - 1\n"
        "x = load()  # reprolint: assume(x, 0, LIMIT)\n"
        "y = load()  # reprolint: assume(y, -1.5, 1.5)\n")
    records = scan_assumes(text, module_constants(ast.parse(text)))
    assert records == [
        AssumeRecord(2, "x", 0, 2 ** 32 - 1),
        AssumeRecord(3, "y", -1.5, 1.5),
    ]


def test_scan_assumes_ignores_malformed_and_inverted():
    text = (
        "a = 1  # reprolint: assume(a, UNKNOWN_NAME, 5)\n"
        "b = 1  # reprolint: assume(b, 10, 0)\n"          # lo > hi
        "c = 1  # reprolint: assume(not-an-identifier, 0, 1)\n"
        "d = 1  # reprolint: assume(d, 0, 1)\n")
    records = scan_assumes(text, {})
    assert records == [AssumeRecord(4, "d", 0, 1)]


def test_assume_record_json_round_trip():
    rec = AssumeRecord(7, "deg", 0, 2 ** 32 - 1)
    assert AssumeRecord.from_json(rec.to_json()) == rec


def test_dtypes_cover_the_full_lattice():
    kinds = {info.kind for info in DTYPES.values()}
    assert kinds == {"b", "u", "i", "f"}
