"""Flag + pass fixtures for the RPL8xx scale-soundness family:
narrowing casts (RPL810), default-dtype constructors (RPL811),
accumulation overflow (RPL812), probability ranges (RPL813), dead
assume pragmas (RPL814), and the cross-module numeric-interface
checker that resolves deferred sites through the call graph."""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.devtools import LintConfig, lint_file
from repro.devtools.framework import config_with
from repro.devtools.engine.runner import run_paths

NUMERIC_CFG = config_with(numeric_module_prefixes=("snippet",),
                          default_dtype_module_prefixes=("snippet",))


def run(tmp_path: Path, code, config=None, name="snippet",
        checker="numeric-soundness"):
    path = tmp_path / f"{name}.py"
    path.write_text(textwrap.dedent(code))
    return lint_file(path, config or NUMERIC_CFG, enabled=[checker])


def codes(violations):
    return sorted({v.code for v in violations})


# ---------------------------------------------------------------------------
# RPL810 — narrowing casts
# ---------------------------------------------------------------------------

def test_rpl810_flags_cast_below_proven_bound(tmp_path):
    found = run(tmp_path, """
        import numpy as np

        MAX_ID = (1 << 48) - 1

        def ids(count):
            arr = np.arange(count, dtype=np.int64)
            capped = np.minimum(arr, MAX_ID)
            return capped.astype(np.int32)
    """)
    assert codes(found) == ["RPL810"]
    assert "int32" in found[0].message


def test_rpl810_passes_when_cast_provably_fits(tmp_path):
    found = run(tmp_path, """
        import numpy as np

        def small(count):
            arr = np.arange(count, dtype=np.int64)
            capped = np.clip(arr, 0, 1000)
            return capped.astype(np.int16)
    """)
    assert found == []


def test_rpl810_stays_quiet_on_unknown_values(tmp_path):
    # mix64-style bit avalanche: nothing is known about the value, so
    # the positively-derived policy must not manufacture a flag.
    found = run(tmp_path, """
        import numpy as np

        def shard(keys, num_workers):
            hashed = mix64(keys)
            return (hashed % np.uint64(num_workers)).astype(np.int64)
    """)
    assert found == []


def test_rpl810_flags_np_scalar_cast_and_asarray_dtype(tmp_path):
    found = run(tmp_path, """
        import numpy as np

        BIG = 1 << 40

        def f():
            return np.int32(BIG)

        def g():
            vals = np.arange(10, dtype=np.int64) * BIG
            return np.asarray(vals, dtype=np.uint16)
    """)
    assert [v.code for v in found] == ["RPL810", "RPL810"]


def test_rpl810_seeded_parameter_bounds(tmp_path):
    # max_id is seeded [0, 2^48) from the interval-seed table
    found = run(tmp_path, """
        import numpy as np

        def truncate(max_id):
            return np.int32(max_id)
    """)
    assert codes(found) == ["RPL810"]


def test_rpl810_local_interprocedural_return_facts(tmp_path):
    found = run(tmp_path, """
        import numpy as np

        def widths():
            return np.arange(8, dtype=np.int64) * (1 << 40)

        def caller():
            return widths().astype(np.int32)
    """)
    assert codes(found) == ["RPL810"]


# ---------------------------------------------------------------------------
# RPL811 — default-dtype constructors
# ---------------------------------------------------------------------------

def test_rpl811_flags_default_dtype_constructors(tmp_path):
    found = run(tmp_path, """
        import numpy as np

        def build(n):
            a = np.arange(n)
            b = np.zeros(n)
            c = np.empty(n)
            return a, b, c
    """)
    assert [v.code for v in found] == ["RPL811"] * 3


def test_rpl811_passes_with_explicit_dtype(tmp_path):
    found = run(tmp_path, """
        import numpy as np

        def build(n):
            a = np.arange(n, dtype=np.int64)
            b = np.zeros(n, np.float64)
            c = np.empty(n, dtype="<u4")
            d = np.zeros_like(a)
            e = np.array([1, 2, 3])
            return a, b, c, d, e
    """)
    assert found == []


def test_rpl811_scoped_to_configured_packages(tmp_path):
    cfg = config_with(numeric_module_prefixes=("snippet",),
                      default_dtype_module_prefixes=("elsewhere",))
    found = run(tmp_path, """
        import numpy as np

        def build(n):
            return np.arange(n)
    """, config=cfg)
    assert found == []


# ---------------------------------------------------------------------------
# RPL812 — accumulation overflow
# ---------------------------------------------------------------------------

def test_rpl812_flags_explicit_narrow_sum_dtype(tmp_path):
    found = run(tmp_path, """
        import numpy as np

        def count(mask):
            return mask.sum(dtype=np.uint32)
    """)
    assert codes(found) == ["RPL812"]


def test_rpl812_flags_bool_mask_platform_sum(tmp_path):
    found = run(tmp_path, """
        import numpy as np

        def count(parent):
            return (parent >= 0).sum()
    """)
    assert codes(found) == ["RPL812"]


def test_rpl812_passes_with_wide_dtype_or_axis(tmp_path):
    found = run(tmp_path, """
        import numpy as np

        def safe(mask, table):
            total = mask.sum(dtype=np.int64)
            rows = table.sum(axis=1)
            wide = np.arange(10, dtype=np.int64).sum()
            return total, rows, wide
    """)
    assert found == []


def test_rpl812_flags_in_loop_augmented_accumulation(tmp_path):
    found = run(tmp_path, """
        import numpy as np

        def acc(blocks):
            total = np.zeros(4, dtype=np.uint16)
            for block in blocks:
                total += block
            return total
    """)
    assert codes(found) == ["RPL812"]


def test_rpl812_passes_in_loop_int64_accumulation(tmp_path):
    found = run(tmp_path, """
        import numpy as np

        def acc(blocks):
            total = np.zeros(4, dtype=np.int64)
            for block in blocks:
                total += block
            return total
    """)
    assert found == []


# ---------------------------------------------------------------------------
# RPL813 — probability ranges
# ---------------------------------------------------------------------------

def test_rpl813_flags_out_of_range_uniform_comparison(tmp_path):
    found = run(tmp_path, """
        import numpy as np

        def bern(rng, prob):
            scaled = prob * 3.0
            return rng.random(8) < scaled
    """)
    assert codes(found) == ["RPL813"]


def test_rpl813_passes_proven_probability(tmp_path):
    found = run(tmp_path, """
        import numpy as np

        def bern(rng, prob):
            halved = prob * 0.5
            return rng.random(8) < halved
    """)
    assert found == []


def test_rpl813_flags_binomial_p_argument(tmp_path):
    found = run(tmp_path, """
        def draw(rng, prob):
            return rng.binomial(10, prob + 1.0)
    """)
    assert codes(found) == ["RPL813"]


def test_rpl813_quiet_on_unknown_probability(tmp_path):
    found = run(tmp_path, """
        def bern(rng, weights):
            return rng.random(8) < weights
    """)
    assert found == []


def test_rpl813_clip_makes_probability_pass(tmp_path):
    found = run(tmp_path, """
        import numpy as np

        def bern(rng, prob):
            scaled = np.clip(prob * 3.0, 0.0, 1.0)
            return rng.random(8) < scaled
    """)
    assert found == []


# ---------------------------------------------------------------------------
# RPL814 — dead assumes, and assumes enabling passes
# ---------------------------------------------------------------------------

def test_assume_pragma_enables_a_pass(tmp_path):
    flagged = run(tmp_path, """
        import numpy as np

        def pack(max_id):
            return max_id  # seeded [0, 2^48): int32 cast would flag
    """)
    assert flagged == []
    without = run(tmp_path, """
        import numpy as np

        def pack(max_id):
            return np.int32(max_id)
    """)
    assert codes(without) == ["RPL810"]
    with_assume = run(tmp_path, """
        import numpy as np

        def pack(max_id):
            small = max_id  # reprolint: assume(small, 0, 1000)
            return np.int32(small)
    """)
    assert with_assume == []


def test_rpl814_flags_dead_assume(tmp_path):
    found = run(tmp_path, """
        import numpy as np

        def f(x):
            return x
        # reprolint: assume(ghost, 0, 1)
    """)
    assert codes(found) == ["RPL814"]


def test_assume_at_module_level_is_live(tmp_path):
    found = run(tmp_path, """
        import numpy as np

        budget = compute()  # reprolint: assume(budget, 0, 100)
        cast = np.int8(budget)
    """)
    assert found == []


# ---------------------------------------------------------------------------
# robustness: loops, widening, scope gating
# ---------------------------------------------------------------------------

def test_loop_widening_terminates_and_stays_sound(tmp_path):
    found = run(tmp_path, """
        import numpy as np

        def grow(n):
            x = 1
            for _ in range(n):
                x = x * 2
            return np.int64(x)
    """)
    # must terminate; the widened bound reaches inf, which is not a
    # positively-derived finite violation, so no flag either
    assert found == []


def test_out_of_scope_module_is_ignored(tmp_path):
    cfg = config_with(numeric_module_prefixes=("elsewhere",),
                      default_dtype_module_prefixes=("elsewhere",))
    found = run(tmp_path, """
        import numpy as np

        BIG = 1 << 40

        def f():
            return np.int32(np.arange(BIG))
    """, config=cfg)
    assert found == []


# ---------------------------------------------------------------------------
# cross-module numeric-interface (project checker)
# ---------------------------------------------------------------------------

def _write_pkg(tmp_path: Path) -> Path:
    pkg = tmp_path / "pkg"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    (pkg / "producer.py").write_text(textwrap.dedent("""
        import numpy as np

        def big_ids():
            return np.arange(16, dtype=np.int64) * (1 << 40)

        def prob_like():
            return np.arange(4, dtype=np.float64) * 5.0
    """))
    return pkg


def test_numeric_interface_flags_cross_module_cast(tmp_path):
    pkg = _write_pkg(tmp_path)
    (pkg / "consumer.py").write_text(textwrap.dedent("""
        import numpy as np

        from pkg.producer import big_ids, prob_like

        def narrow(rng):
            ids = big_ids()
            bad_prob = prob_like()
            flips = rng.random(4) < bad_prob
            return ids.astype(np.int32), flips
    """))
    cfg = config_with(numeric_module_prefixes=("pkg",),
                      default_dtype_module_prefixes=("pkg",))
    run_result = run_paths(
        [tmp_path], cfg,
        enabled=["numeric-soundness", "numeric-interface"],
        cache_dir=None)
    found = codes(run_result.violations)
    assert found == ["RPL810", "RPL813"]
    by_code = {v.code: v for v in run_result.violations}
    assert by_code["RPL810"].path.endswith("consumer.py")
    assert "pkg.producer.big_ids" in by_code["RPL810"].message


def test_numeric_interface_passes_on_fitting_return(tmp_path):
    pkg = _write_pkg(tmp_path)
    (pkg / "consumer.py").write_text(textwrap.dedent("""
        import numpy as np

        from pkg.producer import big_ids

        def wide():
            return big_ids().astype(np.int64)
    """))
    cfg = config_with(numeric_module_prefixes=("pkg",),
                      default_dtype_module_prefixes=("pkg",))
    run_result = run_paths(
        [tmp_path], cfg,
        enabled=["numeric-soundness", "numeric-interface"],
        cache_dir=None)
    assert run_result.violations == []


def test_summary_carries_numeric_facts(tmp_path):
    from repro.devtools.framework import SourceFile
    from repro.devtools.engine.project import summarize_source

    path = tmp_path / "snippet.py"
    path.write_text(textwrap.dedent("""
        import numpy as np

        def ids():
            return np.arange(16, dtype=np.int64)
    """))
    source = SourceFile.parse(path)
    summary = summarize_source(source, NUMERIC_CFG)
    assert summary.numeric["functions"]["ids"] == ["int64", 0, 15]
    # round-trips through the cache's JSON form
    from repro.devtools.engine.project import ModuleSummary
    again = ModuleSummary.from_json(summary.to_json())
    assert again.numeric == summary.numeric
