"""CFG construction and dataflow edge cases: try/finally joins,
while/else, nested with, comprehension scoping, early return inside
with, break/continue through finally, and exceptional-edge semantics."""

from __future__ import annotations

import ast

from repro.devtools.engine import (ForwardAnalysis, build_cfg,
                                   iter_function_cfgs, run_forward)
from repro.devtools.engine.cfg import assigned_names, node_fragments


def cfg_of(code: str):
    fn = ast.parse(code).body[0]
    return build_cfg(fn)


def node(cfg, kind, line=None):
    hits = [n for n in cfg.nodes if n.kind == kind
            and (line is None or n.line == line)]
    assert hits, f"no {kind} node" + (f" at line {line}" if line else "")
    return hits[0]


class TrackOpens(ForwardAnalysis):
    """Toy leak analysis: fact 'h' gens at open(), kills at .close()."""

    def transfer(self, node, facts):
        out = set(facts)
        for frag in node_fragments(node):
            for sub in ast.walk(frag):
                if isinstance(sub, ast.Call):
                    if (isinstance(sub.func, ast.Name)
                            and sub.func.id == "open"):
                        out.add("h")
                    if (isinstance(sub.func, ast.Attribute)
                            and sub.func.attr == "close"):
                        out.discard("h")
        return frozenset(out)


def exit_facts(code: str):
    cfg = cfg_of(code)
    results = run_forward(cfg, TrackOpens())
    normal, _exc = cfg.preds()
    merged = set()
    for pred in normal[cfg.exit.index]:
        merged |= results[pred.index][1]
    return merged


# -- structure ---------------------------------------------------------


def test_if_without_else_falls_through():
    cfg = cfg_of("def f(x):\n    if x:\n        a = 1\n    b = 2\n")
    branch = node(cfg, "branch")
    succ_lines = sorted(s.line for s in branch.succs)
    assert succ_lines == [3, 4]  # then-branch and fall-through


def test_while_else_runs_on_exhaustion_not_break():
    cfg = cfg_of(
        "def f(x):\n"
        "    while x:\n"          # 2
        "        if x > 3:\n"     # 3
        "            break\n"     # 4
        "        x -= 1\n"        # 5
        "    else:\n"
        "        x = -1\n"        # 7
        "    return x\n"          # 8
    )
    loop = node(cfg, "loop")
    # exhaustion path enters the else body
    assert 7 in {s.line for s in loop.succs}
    # break jumps straight to the statement after the loop, skipping else
    brk = node(cfg, "break")
    assert {s.line for s in brk.succs} == {8}
    els = [n for n in cfg.nodes if n.line == 7][0]
    assert {s.line for s in els.succs} == {8}


def test_early_return_inside_with_bypasses_with_end():
    cfg = cfg_of(
        "def f(p, flag):\n"
        "    with open(p) as fh:\n"   # 2
        "        if flag:\n"          # 3
        "            return None\n"   # 4
        "        data = fh.read()\n"  # 5
        "    return data\n"           # 6
    )
    ret = node(cfg, "return", line=4)
    assert ret.succs == [cfg.exit]
    with_end = node(cfg, "with_end")
    assert {p.line for p in cfg.preds()[0][with_end.index]} == {5}


def test_nested_with_unwinds_inner_then_outer():
    cfg = cfg_of(
        "def f(a, b):\n"
        "    with a:\n"        # 2
        "        with b:\n"    # 3
        "            x = 1\n"  # 4
        "    return x\n"       # 5
    )
    ends = [n for n in cfg.nodes if n.kind == "with_end"]
    assert len(ends) == 2
    inner = next(n for n in ends if n.line == 3)
    outer = next(n for n in ends if n.line == 2)
    assert outer in inner.succs


def test_try_finally_joins_both_normal_and_abrupt_exits():
    cfg = cfg_of(
        "def f(p, flag):\n"
        "    fh = open(p)\n"        # 2
        "    try:\n"                # 3
        "        if flag:\n"        # 4
        "            return 1\n"    # 5
        "        x = 2\n"           # 6
        "    finally:\n"
        "        fh.close()\n"      # 8
        "    return x\n"            # 9
    )
    # the finally body is duplicated: once for the return path, once for
    # the fall-through join, once as the exception escape chain
    closes = [n for n in cfg.nodes if n.line == 8]
    assert len(closes) == 3
    ret = node(cfg, "return", line=5)
    # the return routes through a finally copy before reaching exit
    assert {s.line for s in ret.succs} == {8}
    copy = ret.succs[0]
    assert cfg.exit in copy.succs


def test_continue_through_finally_returns_to_loop_head():
    cfg = cfg_of(
        "def f(xs):\n"
        "    for x in xs:\n"       # 2
        "        try:\n"           # 3
        "            if x:\n"      # 4
        "                continue\n"  # 5
        "        finally:\n"
        "            log(x)\n"     # 7
        "    return xs\n"          # 8
    )
    cont = node(cfg, "continue")
    copy = cont.succs[0]
    assert copy.line == 7
    loop = node(cfg, "loop")
    assert loop in copy.succs


def test_except_handler_receives_exceptional_edges():
    cfg = cfg_of(
        "def f(p):\n"
        "    try:\n"               # 2
        "        fh = open(p)\n"   # 3
        "    except OSError:\n"    # 4
        "        return None\n"    # 5
        "    return fh\n"          # 6
    )
    body = [n for n in cfg.nodes if n.line == 3][0]
    handler = node(cfg, "except")
    assert handler in body.exc_succs


def test_match_without_wildcard_can_fall_through():
    cfg = cfg_of(
        "def f(x):\n"
        "    match x:\n"           # 2
        "        case 1:\n"
        "            a = 1\n"      # 4
        "    return x\n"           # 5
    )
    branch = node(cfg, "branch")
    assert 5 in {s.line for s in branch.succs}


# -- assigned_names / comprehension scoping ----------------------------


def test_comprehension_targets_do_not_bind_in_enclosing_scope():
    stmt = ast.parse("ys = [fh for fh in handles]").body[0]
    assert assigned_names(stmt) == {"ys"}


def test_assigned_names_cover_loop_with_import_and_defs():
    mod = ast.parse(
        "for i, (a, b) in pairs: pass\n"
        "with open(p) as fh: pass\n"
        "import os.path\n"
        "from x import y as z\n"
        "def g(): pass\n"
    )
    names = set()
    for stmt in mod.body:
        names |= assigned_names(stmt)
    assert names == {"i", "a", "b", "fh", "os", "z", "g"}


# -- dataflow ----------------------------------------------------------


def test_dataflow_sees_leak_on_one_branch():
    leaked = exit_facts(
        "def f(p, flag):\n"
        "    fh = open(p)\n"
        "    if flag:\n"
        "        return 1\n"
        "    fh.close()\n"
        "    return 0\n"
    )
    assert "h" in leaked


def test_dataflow_finally_close_covers_every_path():
    leaked = exit_facts(
        "def f(p, flag):\n"
        "    fh = open(p)\n"
        "    try:\n"
        "        if flag:\n"
        "            return 1\n"
        "        return 0\n"
        "    finally:\n"
        "        fh.close()\n"
    )
    assert "h" not in leaked


def test_exceptional_edge_carries_in_facts_not_out_facts():
    # the close() inside try may never run when its own statement
    # raises; the handler must still see the handle as open
    cfg = cfg_of(
        "def f(p):\n"
        "    fh = open(p)\n"        # 2
        "    try:\n"                # 3
        "        fh.close()\n"      # 4
        "    except OSError:\n"     # 5
        "        pass\n"            # 6
    )
    results = run_forward(cfg, TrackOpens())
    handler = node(cfg, "except")
    assert "h" in results[handler.index][0]


def test_compound_headers_transfer_only_their_fragment():
    # an `ast.walk` over the whole Try statement would see the
    # finally's close() at the try head and kill the fact prematurely
    cfg = cfg_of(
        "def f(p, flag):\n"
        "    fh = open(p)\n"
        "    try:\n"
        "        x = 1\n"           # 4
        "    finally:\n"
        "        fh.close()\n"
    )
    results = run_forward(cfg, TrackOpens())
    body = [n for n in cfg.nodes if n.line == 4][0]
    assert "h" in results[body.index][0]


def test_iter_function_cfgs_finds_nested_defs():
    tree = ast.parse(
        "def outer():\n"
        "    def inner():\n"
        "        return 1\n"
        "    return inner\n"
    )
    names = [fn.name for fn, _ in iter_function_cfgs(tree)]
    assert sorted(names) == ["inner", "outer"]
