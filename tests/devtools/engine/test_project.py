"""Project model: summary serialization, re-export resolution, the
call graph, RPL210 (re-export laundering + dynamic imports), RPL701
dead-pragma provability, and the golden whole-repo reachability test."""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.devtools import LintConfig
from repro.devtools.engine import (ModuleSummary, ProjectModel, run_paths,
                                   summarize_source)
from repro.devtools.framework import SourceFile, config_with

SRC_REPRO = Path(__file__).resolve().parents[3] / "src" / "repro"


def write_module(tmp_path: Path, module: str, code: str) -> Path:
    parts = module.split(".")
    directory = tmp_path
    for pkg in parts[:-1]:
        directory = directory / pkg
        directory.mkdir(exist_ok=True)
        (directory / "__init__.py").touch()
    path = directory / f"{parts[-1]}.py"
    path.write_text(textwrap.dedent(code))
    return path


def summarize(path: Path) -> ModuleSummary:
    return summarize_source(SourceFile.parse(path))


def build_project(tmp_path: Path, modules: dict[str, str],
                  config: LintConfig | None = None) -> ProjectModel:
    summaries = [summarize(write_module(tmp_path, module, code))
                 for module, code in modules.items()]
    return ProjectModel(summaries, config or LintConfig())


# -- summaries ---------------------------------------------------------


def test_summary_json_round_trip(tmp_path):
    path = write_module(tmp_path, "pkg.mod", """
        import importlib
        from os import path as osp

        __all__ = ["api", "Box"]

        def api(x):
            return helper(x.step())

        def helper(y):
            mod = importlib.import_module("pkg.other")
            return mod.f(y)

        class Box:
            def put(self, v):
                self.v = v
    """)
    summary = summarize(path)
    doc = summary.to_json()
    again = ModuleSummary.from_json(doc)
    assert again.to_json() == doc
    assert again.module == "pkg.mod"
    assert "api" in again.functions and "helper" in again.functions
    assert again.classes["Box"].methods == ["put"]
    assert "pkg.other" in {mod for mod, _line in again.dynamic_imports}
    assert list(again.exports) == ["api", "Box"]


def test_summary_records_scoped_and_relative_imports(tmp_path):
    path = write_module(tmp_path, "pkg.sub.mod", """
        from ..core import thing

        def lazy():
            from pkg import late
            return late
    """)
    summary = summarize(path)
    by_alias = {rec.alias: rec for rec in summary.imports}
    assert by_alias["thing"].module == "pkg.core"
    assert by_alias["late"].scope == "function"
    assert by_alias["late"].function == "lazy"


# -- resolution --------------------------------------------------------


def test_resolve_follows_re_export_chain(tmp_path):
    project = build_project(tmp_path, {
        "pkg.impl": "def f():\n    return 1\n",
        "pkg.shim": "from pkg.impl import f\n",
        "pkg.user": "from pkg.shim import f\n",
    })
    assert project.resolve("pkg.user", "f") == ("pkg.impl", "f")


def test_resolve_chain_through_module_alias(tmp_path):
    project = build_project(tmp_path, {
        "pkg.impl": "def f():\n    return 1\n",
        "pkg.user": "import pkg.impl as imp\n\ndef g():\n"
                    "    return imp.f()\n",
    })
    assert project.resolve_chain("pkg.user", "imp.f") == ("pkg.impl", "f")


def test_call_graph_resolves_cross_module_edges(tmp_path):
    project = build_project(tmp_path, {
        "pkg.low": "def leaf():\n    return 0\n",
        "pkg.mid": "from pkg.low import leaf\n\ndef step():\n"
                   "    return leaf()\n",
        "pkg.top": "from pkg.mid import step\n\ndef run():\n"
                   "    return step()\n",
    })
    assert "pkg.mid:step" in project.call_edges("pkg.top:run")
    path = project.reaches("pkg.top:run", "pkg.low")
    assert path == ["pkg.top:run", "pkg.mid:step", "pkg.low:leaf"]


def test_reaches_expands_class_construction_into_methods(tmp_path):
    project = build_project(tmp_path, {
        "pkg.sink": "class Sink:\n    def write(self):\n"
                    "        import pkg.deep\n",
        "pkg.top": "from pkg.sink import Sink\n\ndef run():\n"
                   "    return Sink()\n",
    })
    assert project.reaches("pkg.top:run", "pkg.sink") != []


# -- the golden test: the real repo ------------------------------------


def test_golden_generate_to_reaches_formats_pipeline():
    summaries = [summarize(p) for p in sorted(SRC_REPRO.rglob("*.py"))]
    project = ProjectModel(summaries, LintConfig())
    start = "repro.system:TrillionG.generate_to"
    assert "TrillionG.generate_to" in project.modules["repro.system"].functions
    path = project.reaches(start, "repro.formats.pipeline")
    assert path, ("generate_to must reach the block-streaming output "
                  "pipeline through the call graph")
    assert path[0] == start
    assert path[-1].startswith("repro.formats.pipeline:")


def test_golden_nothing_imports_the_deprecated_shims():
    """The dist shims only exist for out-of-tree callers: the project
    import graph must show no in-repo module importing them."""
    summaries = [summarize(p) for p in sorted(SRC_REPRO.rglob("*.py"))]
    project = ProjectModel(summaries, LintConfig())
    shims = {"repro.dist.external_sort", "repro.dist.shuffle"}
    importers = {s.module for s in summaries
                 if shims & project.imported_modules(s.module)}
    assert importers == set()


# -- RPL210: callgraph layering ----------------------------------------

LAYERED = config_with(layering_rules={"pkg.core": ("pkg.dist",)})


def lint_project(tmp_path, modules, config, enabled):
    for module, code in modules.items():
        write_module(tmp_path, module, code)
    run = run_paths([tmp_path], config, enabled=enabled, cache_dir=None)
    return run.violations


def test_rpl210_flags_re_export_laundering(tmp_path):
    violations = lint_project(tmp_path, {
        "pkg.dist.pool": "def run_tasks():\n    return []\n",
        "pkg.glue": "from pkg.dist.pool import run_tasks\n",
        "pkg.core.engine": "from pkg.glue import run_tasks\n",
    }, LAYERED, ["callgraph-layering"])
    assert [v.code for v in violations] == ["RPL210"]
    assert "re-export laundering" in violations[0].message


def test_rpl210_flags_dynamic_import(tmp_path):
    violations = lint_project(tmp_path, {
        "pkg.dist.pool": "def run_tasks():\n    return []\n",
        "pkg.core.engine": "import importlib\n\ndef lazy():\n"
                           "    return importlib.import_module("
                           "'pkg.dist.pool')\n",
    }, LAYERED, ["callgraph-layering"])
    assert [v.code for v in violations] == ["RPL210"]
    assert "importlib" in violations[0].message


def test_rpl210_quiet_for_clean_layering(tmp_path):
    violations = lint_project(tmp_path, {
        "pkg.util.misc": "def helper():\n    return 1\n",
        "pkg.glue": "from pkg.util.misc import helper\n",
        "pkg.core.engine": "from pkg.glue import helper\n",
    }, LAYERED, ["callgraph-layering"])
    assert violations == []


def test_rpl210_leaves_literal_banned_imports_to_rpl201(tmp_path):
    # the literal target is already in the banned layer: that is the
    # per-file RPL201 rule's finding, not a laundering case
    violations = lint_project(tmp_path, {
        "pkg.dist.pool": "def run_tasks():\n    return []\n",
        "pkg.core.engine": "from pkg.dist.pool import run_tasks\n",
    }, LAYERED, ["callgraph-layering"])
    assert violations == []


# -- RPL701: dead pragmas ----------------------------------------------


def test_rpl701_flags_pragma_that_suppresses_nothing(tmp_path):
    violations = lint_project(tmp_path, {
        "pkg.mod": "x = 1  # reprolint: disable=RPL320\n",
    }, LintConfig(), ["resource-lifecycle", "dead-pragma"])
    assert [v.code for v in violations] == ["RPL701"]


def test_rpl701_quiet_when_pragma_is_used(tmp_path):
    violations = lint_project(tmp_path, {
        "pkg.mod": ("def keep(path):\n"
                    "    fh = open(path)  # reprolint: disable=RPL320\n"
                    "    return fh.read(1)\n"),
    }, LintConfig(), ["resource-lifecycle", "dead-pragma"])
    assert violations == []


def test_rpl701_not_provable_when_checker_did_not_run(tmp_path):
    # resource-lifecycle is not in the enabled set, so its silence
    # proves nothing about the pragma
    violations = lint_project(tmp_path, {
        "pkg.mod": "x = 1  # reprolint: disable=RPL320\n",
    }, LintConfig(), ["rng-determinism", "dead-pragma"])
    assert violations == []


def test_rpl701_not_provable_when_code_profile_disabled(tmp_path):
    config = config_with(disabled_codes=frozenset({"RPL320"}))
    violations = lint_project(tmp_path, {
        "pkg.mod": "x = 1  # reprolint: disable=RPL320\n",
    }, config, ["resource-lifecycle", "dead-pragma"])
    assert violations == []
