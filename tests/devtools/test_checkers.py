"""Per-checker fixtures: every checker has snippets that must flag and
snippets that must pass, plus pragma-suppression coverage."""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from repro.devtools import LintConfig, lint_file
from repro.devtools.framework import config_with, module_name


def write_module(tmp_path: Path, module: str, code: str) -> Path:
    """Materialize ``code`` as ``module`` inside a package tree so the
    linter sees the right dotted name."""
    parts = module.split(".")
    directory = tmp_path
    for pkg in parts[:-1]:
        directory = directory / pkg
        directory.mkdir(exist_ok=True)
        (directory / "__init__.py").touch()
    path = directory / f"{parts[-1]}.py"
    path.write_text(textwrap.dedent(code))
    return path


def run(tmp_path, checker, code, module="snippet", config=None):
    path = write_module(tmp_path, module, code)
    assert module_name(path) == module
    return lint_file(path, config or LintConfig(), enabled=[checker])


def codes(violations):
    return sorted({v.code for v in violations})


# ---------------------------------------------------------------------------
# rng-determinism
# ---------------------------------------------------------------------------

RNG_FLAG = [
    ("import random\n", ["RPL101"]),
    ("from random import randint\n", ["RPL101"]),
    ("import numpy as np\nrng = np.random.default_rng()\n", ["RPL102"]),
    ("import numpy as np\nnp.random.seed(7)\n", ["RPL102"]),
    ("import numpy.random\n", ["RPL102"]),
    ("from numpy import random\n", ["RPL102"]),
    ("from numpy.random import default_rng\nr = default_rng(0)\n",
     ["RPL103"]),
    ("from numpy.random import SeedSequence\ns = SeedSequence(3)\n",
     ["RPL103"]),
]

RNG_PASS = [
    "import numpy as np\n\ndef f(rng: np.random.Generator):\n"
    "    return rng.random(3)\n",
    "from numpy.random import Generator\n\ndef f(rng: Generator):\n"
    "    return rng.integers(10)\n",
    "from repro.core.rng import stream\nrng = stream(0, 1)\n",
]


@pytest.mark.parametrize("code,expected", RNG_FLAG)
def test_rng_checker_flags(tmp_path, code, expected):
    found = run(tmp_path, "rng-determinism", code)
    assert codes(found) == expected, found


@pytest.mark.parametrize("code", RNG_PASS)
def test_rng_checker_passes(tmp_path, code):
    assert run(tmp_path, "rng-determinism", code) == []


def test_rng_checker_allows_the_rng_module_itself(tmp_path):
    code = ("import numpy as np\n\n"
            "def stream(seed):\n"
            "    return np.random.default_rng(np.random.SeedSequence([seed]))\n")
    assert run(tmp_path, "rng-determinism", code,
               module="repro.core.rng") == []
    # ... while any other module placement flags the same code.
    assert run(tmp_path, "rng-determinism", code,
               module="repro.core.other") != []


# ---------------------------------------------------------------------------
# layering
# ---------------------------------------------------------------------------

def test_layering_flags_core_importing_dist(tmp_path):
    found = run(tmp_path, "layering",
                "from repro.dist import runner\n", module="repro.core.foo")
    assert codes(found) == ["RPL201"]


def test_layering_flags_relative_import(tmp_path):
    found = run(tmp_path, "layering",
                "from ..dist.external_sort import external_sort_unique\n",
                module="repro.models.foo")
    assert codes(found) == ["RPL201"]
    assert len(found) == 1  # module + attribute flagged once, not twice


def test_layering_flags_plain_import(tmp_path):
    found = run(tmp_path, "layering",
                "import repro.formats.base\n", module="repro.core.foo")
    assert codes(found) == ["RPL201"]


@pytest.mark.parametrize("module,code", [
    ("repro.dist.foo", "from repro.core.rng import stream\n"),
    ("repro.models.foo", "from ..core.seed import SeedMatrix\n"),
    ("repro.models.foo", "from ..util.shuffle import hash_partition\n"),
    ("repro.formats.foo", "from repro.dist import runner\n"),
])
def test_layering_passes_downward_imports(tmp_path, module, code):
    assert run(tmp_path, "layering", code, module=module) == []


# ---------------------------------------------------------------------------
# numerical-safety
# ---------------------------------------------------------------------------

NUM_FLAG = [
    ("def f(prob):\n    return prob == 0.3\n", ["RPL301"]),
    ("def f(x):\n    return x != 0.57\n", ["RPL301"]),
    ("def f(cdf_value, threshold):\n"
     "    return cdf_value == threshold\n", ["RPL301"]),
    ("def f(a):\n    return a == 0.25 + 0.5\n", ["RPL301"]),
    ("from decimal import Decimal\nx = Decimal('0.1') * 0.5\n", ["RPL302"]),
]

NUM_PASS = [
    "def f(p):\n    return p == 0.0\n",
    "def f(p):\n    return p != 1.0\n",
    "def f(prob):\n    return abs(prob - 0.3) < 1e-9\n",
    "def f(n):\n    return n == 3\n",
    "from decimal import Decimal\nx = Decimal('1') / Decimal('3')\n",
]


@pytest.mark.parametrize("code,expected", NUM_FLAG)
def test_numerical_safety_flags(tmp_path, code, expected):
    found = run(tmp_path, "numerical-safety", code)
    assert codes(found) == expected, found


@pytest.mark.parametrize("code", NUM_PASS)
def test_numerical_safety_passes(tmp_path, code):
    assert run(tmp_path, "numerical-safety", code) == []


DECIMAL_ROUNDTRIP = ("from decimal import Decimal\n\n"
                     "def f(value_decimal):\n"
                     "    return float(value_decimal) * 2\n")


def test_decimal_roundtrip_flagged_in_precision_modules(tmp_path):
    found = run(tmp_path, "numerical-safety", DECIMAL_ROUNDTRIP,
                module="repro.core.recvec")
    assert codes(found) == ["RPL302"]


def test_decimal_roundtrip_allowed_outside_precision_modules(tmp_path):
    assert run(tmp_path, "numerical-safety", DECIMAL_ROUNDTRIP,
               module="repro.analysis.foo") == []


# ---------------------------------------------------------------------------
# exception-hygiene
# ---------------------------------------------------------------------------

EXC_FLAG = [
    ("try:\n    pass\nexcept:\n    pass\n", ["RPL401"]),
    ("try:\n    pass\nexcept Exception:\n    pass\n", ["RPL402"]),
    ("try:\n    pass\nexcept BaseException as exc:\n    raise\n", ["RPL402"]),
    ("try:\n    pass\nexcept (ValueError, Exception):\n    pass\n",
     ["RPL402"]),
]

EXC_PASS = [
    "try:\n    pass\nexcept ValueError:\n    pass\n",
    "try:\n    pass\nexcept (OSError, KeyError) as exc:\n    raise\n",
]


@pytest.mark.parametrize("code,expected", EXC_FLAG)
def test_exception_hygiene_flags(tmp_path, code, expected):
    found = run(tmp_path, "exception-hygiene", code)
    assert codes(found) == expected, found


@pytest.mark.parametrize("code", EXC_PASS)
def test_exception_hygiene_passes(tmp_path, code):
    assert run(tmp_path, "exception-hygiene", code) == []


def test_exception_hygiene_respects_allowlist(tmp_path):
    config = config_with(broad_except_allowed=frozenset({"snippet"}))
    assert run(tmp_path, "exception-hygiene", EXC_FLAG[1][0],
               config=config) == []


# ---------------------------------------------------------------------------
# api-completeness
# ---------------------------------------------------------------------------

API_FLAG = [
    ("def public():\n    pass\n", ["RPL501"]),
    ("__all__ = ['missing']\n", ["RPL502"]),
    ("__all__ = ['f']\n\ndef f():\n    pass\n\ndef g():\n    pass\n",
     ["RPL503"]),
    ("__all__ = [n for n in ('a',)]\n", ["RPL504"]),
]

API_PASS = [
    "__all__ = ['f', 'C']\n\ndef f():\n    pass\n\nclass C:\n    pass\n",
    "__all__ = ['stream']\nfrom repro.core.rng import stream\n",
    "CONSTANT = 3\n",                       # constants-only module is exempt
    "__all__ = ['f']\n\ndef f():\n    pass\n\ndef _helper():\n    pass\n",
]


@pytest.mark.parametrize("code,expected", API_FLAG)
def test_api_completeness_flags(tmp_path, code, expected):
    found = run(tmp_path, "api-completeness", code)
    assert codes(found) == expected, found


@pytest.mark.parametrize("code", API_PASS)
def test_api_completeness_passes(tmp_path, code):
    assert run(tmp_path, "api-completeness", code) == []


def test_api_completeness_exempts_dunder_main(tmp_path):
    path = write_module(tmp_path, "pkg.__main__", "def main():\n    pass\n")
    assert lint_file(path, enabled=["api-completeness"]) == []


# ---------------------------------------------------------------------------
# mutable-defaults
# ---------------------------------------------------------------------------

MUT_FLAG = [
    ("def f(x=[]):\n    return x\n", ["RPL601"]),
    ("def f(x={}):\n    return x\n", ["RPL601"]),
    ("def f(x=dict()):\n    return x\n", ["RPL601"]),
    ("def f(*, x=set()):\n    return x\n", ["RPL601"]),
    ("g = lambda x=[]: x\n", ["RPL601"]),
]

MUT_PASS = [
    "def f(x=None):\n    return x or []\n",
    "def f(x=()):\n    return x\n",
    "def f(x=0, y='s'):\n    return x\n",
    "def f(x=frozenset()):\n    return x\n",
]


@pytest.mark.parametrize("code,expected", MUT_FLAG)
def test_mutable_defaults_flags(tmp_path, code, expected):
    found = run(tmp_path, "mutable-defaults", code)
    assert codes(found) == expected, found


@pytest.mark.parametrize("code", MUT_PASS)
def test_mutable_defaults_passes(tmp_path, code):
    assert run(tmp_path, "mutable-defaults", code) == []


# ---------------------------------------------------------------------------
# pragmas
# ---------------------------------------------------------------------------

def test_line_pragma_suppresses_by_name(tmp_path):
    code = "import random  # reprolint: disable=rng-determinism\n"
    assert run(tmp_path, "rng-determinism", code) == []


def test_line_pragma_suppresses_by_code(tmp_path):
    code = "import random  # reprolint: disable=RPL101\n"
    assert run(tmp_path, "rng-determinism", code) == []


def test_line_pragma_only_covers_its_line(tmp_path):
    code = ("import random  # reprolint: disable=all\n"
            "from random import randint\n")
    found = run(tmp_path, "rng-determinism", code)
    assert [v.line for v in found] == [2]


def test_file_pragma_suppresses_one_checker(tmp_path):
    code = ("# reprolint: disable-file=mutable-defaults\n"
            "def f(x=[]):\n    return x\n")
    assert run(tmp_path, "mutable-defaults", code) == []
    # other checkers still run on the same file
    code2 = ("# reprolint: disable-file=mutable-defaults\n"
             "import random\n")
    assert run(tmp_path, "rng-determinism", code2) != []


def test_skip_file_pragma(tmp_path):
    code = ("# reprolint: skip-file\n"
            "import random\n\ndef f(x=[]):\n    return x\n")
    path = write_module(tmp_path, "snippet", code)
    assert lint_file(path) == []


# ---------------------------------------------------------------------------
# exception-hygiene: pool-timeout rules (RPL403/RPL404)
# ---------------------------------------------------------------------------

POOL_FLAG = [
    ("results = pool.map(work, tasks)\n", ["RPL403"]),
    ("for r in self.pool.imap_unordered(work, tasks):\n    pass\n",
     ["RPL403"]),
    ("out = worker_pool.starmap(work, tasks)\n", ["RPL403"]),
    ("value = result.get()\n", ["RPL404"]),
    ("async_result.get()\n", ["RPL404"]),
]

POOL_PASS = [
    "value = result.get(timeout=30)\n",
    "value = result.get(5)\n",              # positional timeout
    "option = mapping.get('key')\n",        # not a result object
    "pool.close()\n",                       # not a blocking scatter
]


@pytest.mark.parametrize("code,expected", POOL_FLAG)
def test_pool_timeout_flags_in_dist(tmp_path, code, expected):
    found = run(tmp_path, "exception-hygiene", code,
                module="repro.dist.snippet")
    assert codes(found) == expected, found


@pytest.mark.parametrize("code,expected", POOL_FLAG)
def test_pool_timeout_ignored_outside_dist(tmp_path, code, expected):
    assert run(tmp_path, "exception-hygiene", code) == []


@pytest.mark.parametrize("code", POOL_PASS)
def test_pool_timeout_passes_in_dist(tmp_path, code):
    assert run(tmp_path, "exception-hygiene", code,
               module="repro.dist.snippet") == []


def test_pool_timeout_prefixes_configurable(tmp_path):
    config = config_with(pool_timeout_module_prefixes=("mypkg",))
    found = run(tmp_path, "exception-hygiene",
                "pool.map(work, tasks)\n", module="mypkg.runner",
                config=config)
    assert codes(found) == ["RPL403"]


# ---------------------------------------------------------------------------
# block-streaming (RPL505/RPL506)
# ---------------------------------------------------------------------------

BLOCK_FLAG = [
    ("for u, vs in gen.iter_adjacency():\n    writer.add(u, vs)\n",
     ["RPL505"]),
    ("while pairs:\n    u, vs = pairs.pop()\n    self.writer.add(u, vs)\n",
     ["RPL505"]),
    ("result = fmt.write(path, gen.iter_adjacency(lo, hi), nv)\n",
     ["RPL506"]),
]

BLOCK_PASS = [
    "for block in gen.iter_blocks():\n    writer.add_block(block)\n",
    "result = fmt.write_blocks(path, gen.iter_blocks(lo, hi), nv)\n",
    "writer.add(u, vs)\n",                       # not in a loop
    "for item in items:\n    bag.add(item)\n",   # not a writer
    "fmt.write(path, pairs, nv)\n",              # not an iter_adjacency feed
]


@pytest.mark.parametrize("code,expected", BLOCK_FLAG)
def test_block_streaming_flags_in_producers(tmp_path, code, expected):
    found = run(tmp_path, "block-streaming", code,
                module="repro.dist.snippet")
    assert codes(found) == expected, found


@pytest.mark.parametrize("code,expected", BLOCK_FLAG)
def test_block_streaming_ignored_outside_producers(tmp_path, code, expected):
    # The formats package itself keeps per-vertex `add` as the fallback.
    assert run(tmp_path, "block-streaming", code,
               module="repro.formats.snippet") == []


@pytest.mark.parametrize("code", BLOCK_PASS)
def test_block_streaming_passes_in_producers(tmp_path, code):
    assert run(tmp_path, "block-streaming", code,
               module="repro.system") == []


def test_block_streaming_prefixes_configurable(tmp_path):
    config = config_with(block_streaming_module_prefixes=("mypkg",))
    found = run(tmp_path, "block-streaming",
                "for u, vs in g.iter_adjacency():\n    writer.add(u, vs)\n",
                module="mypkg.producer", config=config)
    assert codes(found) == ["RPL505"]


# ---------------------------------------------------------------------------
# telemetry (RPL507/RPL508)
# ---------------------------------------------------------------------------

TELEMETRY_507_FLAG = [
    "import time\nt0 = time.perf_counter()\n",
    "from time import perf_counter\nt0 = perf_counter()\n",
    "import time as t\nelapsed = t.perf_counter() - t0\n",
]

TELEMETRY_507_PASS = [
    "import time\ntime.sleep(0.1)\n",            # scheduling, not timing
    "import time\nnow = time.monotonic()\n",     # throttling is fine
    "from repro.telemetry import span\nwith span('x'):\n    pass\n",
]


@pytest.mark.parametrize("code", TELEMETRY_507_FLAG)
def test_telemetry_flags_perf_counter_in_instrumented_layers(tmp_path, code):
    for module in ("repro.system", "repro.dist.snippet",
                   "repro.formats.snippet"):
        found = run(tmp_path, "telemetry", code, module=module)
        assert codes(found) == ["RPL507"], (module, found)


@pytest.mark.parametrize("code", TELEMETRY_507_PASS)
def test_telemetry_passes_non_timing_clocks(tmp_path, code):
    assert run(tmp_path, "telemetry", code, module="repro.dist.snippet") == []


@pytest.mark.parametrize("code", TELEMETRY_507_FLAG)
def test_telemetry_allows_perf_counter_outside_scope(tmp_path, code):
    # models/ and the telemetry implementation itself may read the clock.
    for module in ("repro.models.snippet", "repro.telemetry.spans"):
        found = [v for v in run(tmp_path, "telemetry", code, module=module)
                 if v.code == "RPL507"]
        assert found == [], (module, found)


def test_telemetry_flags_bare_print_in_library_modules(tmp_path):
    found = run(tmp_path, "telemetry", "print('done')\n",
                module="repro.dist.snippet")
    assert codes(found) == ["RPL508"]


def test_telemetry_allows_print_in_cli_and_devtools(tmp_path):
    for module in ("repro.cli", "repro.devtools.lint"):
        assert run(tmp_path, "telemetry", "print('done')\n",
                   module=module) == []


def test_telemetry_prefixes_configurable(tmp_path):
    config = config_with(
        telemetry_span_module_prefixes=("mypkg",),
        print_allowed_module_prefixes=("mypkg.frontend",))
    found = run(tmp_path, "telemetry",
                "import time\nt0 = time.perf_counter()\nprint(t0)\n",
                module="mypkg.worker", config=config)
    assert codes(found) == ["RPL507", "RPL508"]
    assert run(tmp_path, "telemetry", "print('ok')\n",
               module="mypkg.frontend", config=config) == []


def test_telemetry_pragma_suppression(tmp_path):
    code = ("import time\n"
            "t0 = time.perf_counter()  # reprolint: disable=RPL507\n")
    assert run(tmp_path, "telemetry", code,
               module="repro.dist.snippet") == []


def test_telemetry_layering_rule_blocks_upward_imports(tmp_path):
    found = run(tmp_path, "layering",
                "from repro.formats import get_format\n",
                module="repro.telemetry.export")
    assert codes(found) == ["RPL201"]


# ---------------------------------------------------------------------------
# read-only-introspection (RPL509)
# ---------------------------------------------------------------------------

INTROSPECTION_FLAG = [
    # Generator machinery imports: absolute, from-form, and relative.
    "import repro.core.generator\n",
    "from repro.core import generator\n",
    "from repro.models import RMatModel\n",
    "from ..core.rng import stream\n",
    # RNG construction / draws.
    "def sample(rng_root):\n    s = stream(rng_root, 'flight')\n",
    "def jitter(rng):\n    return rng.random()\n",
    "def pick(rng, n):\n    return rng.integers(n)\n",
    # Registry mutation, including instrument-creating accessors.
    "def tick(reg):\n    reg.counter('flight.ticks').inc()\n",
    "def tick(reg):\n    reg.gauge('flight.rss').set(1)\n",
    "def note(h):\n    h.observe(0.5)\n",
    "def fold(reg, other):\n    reg.merge(other)\n",
    "def clear(reg):\n    reg.reset()\n",
]

INTROSPECTION_PASS = [
    # Read-only views are the sanctioned surface.
    "from repro.telemetry.metrics import global_registry\n"
    "def view():\n    return global_registry().snapshot()\n",
    "from ..spans import tracer\n"
    "def active():\n    return tracer().active_stacks()\n",
    # threading.Event.set() is lifecycle, not a gauge write.
    "import threading\n"
    "ev = threading.Event()\nev.set()\n",
    # Stdlib imports and pure dict shuffling are fine.
    "import json\nimport os\n"
    "def vitals():\n    return dict(os.environ)\n",
]


@pytest.mark.parametrize("code", INTROSPECTION_FLAG)
def test_introspection_flags_in_observer_modules(tmp_path, code):
    for module in ("repro.telemetry.flight", "repro.telemetry.server",
                   "repro.telemetry.traceview"):
        found = [v for v in run(tmp_path, "read-only-introspection",
                                code, module=module)
                 if v.code == "RPL509"]
        assert found, (module, code)


@pytest.mark.parametrize("code", INTROSPECTION_PASS)
def test_introspection_passes_read_only_views(tmp_path, code):
    found = run(tmp_path, "read-only-introspection", code,
                module="repro.telemetry.flight")
    assert found == [], found


@pytest.mark.parametrize("code", INTROSPECTION_FLAG)
def test_introspection_scoped_to_observer_modules(tmp_path, code):
    # The same constructs are legitimate elsewhere (e.g. the registry
    # implementation itself, or generator code).
    for module in ("repro.telemetry.metrics", "repro.core.generator",
                   "repro.system"):
        assert run(tmp_path, "read-only-introspection", code,
                   module=module) == [], (module, code)


def test_introspection_prefixes_configurable(tmp_path):
    config = config_with(
        introspection_module_prefixes=("mypkg.observe",),
        introspection_forbidden_imports=("mypkg.engine",))
    found = run(tmp_path, "read-only-introspection",
                "from mypkg.engine import spin\n",
                module="mypkg.observe.view", config=config)
    assert codes(found) == ["RPL509"]
    assert run(tmp_path, "read-only-introspection",
               "from mypkg.engine import spin\n",
               module="mypkg.other", config=config) == []


def test_introspection_pragma_suppression(tmp_path):
    code = ("def tick(reg):\n"
            "    reg.counter('x').inc()  # reprolint: disable=RPL509\n")
    assert run(tmp_path, "read-only-introspection", code,
               module="repro.telemetry.flight") == []


# ---------------------------------------------------------------------------
# kernel-vectorization (RPL510)
# ---------------------------------------------------------------------------

KERNEL_FLAG = [
    "def sample(self, rng, n):\n"
    "    for r in rows:\n"
    "        out[r] = 1\n",
    "def sample(self, rng, n):\n"
    "    for i, d in enumerate(dests):\n"
    "        out[i] = d\n",
    "def _fill(self):\n"
    "    for r, d in zip(rows, dests):\n"
    "        emit(r, d)\n",
    "def _fill(self):\n"
    "    for d in self.destinations:\n"
    "        emit(d)\n",
    "def retry(self):\n"
    "    for r in refill_rows:\n"
    "        redraw(r)\n",
]

KERNEL_PASS = [
    # Per-block / per-table loops are O(block) or O(2^b), not O(|E|).
    "def build(self):\n"
    "    for code in patterns:\n"
    "        make_table(code)\n",
    "def build(self):\n"
    "    for level in range(self.levels):\n"
    "        peel(level)\n",
    "def degrees(self):\n"
    "    for src in sources:\n"
    "        count(src)\n",
    # The paper-faithful engine is a per-edge loop by design.
    "def _generate_block_reference(self):\n"
    "    for r in rows:\n"
    "        step(r)\n",
    "def _sample_destination_reference(self, rng):\n"
    "    for d in dests:\n"
    "        check(d)\n",
]


@pytest.mark.parametrize("code", KERNEL_FLAG)
def test_kernel_vectorization_flags_per_edge_loops(tmp_path, code):
    for module in ("repro.core.generator", "repro.core.alias"):
        found = run(tmp_path, "kernel-vectorization", code, module=module)
        assert codes(found) == ["RPL510"], (module, found)


@pytest.mark.parametrize("code", KERNEL_PASS)
def test_kernel_vectorization_passes_batch_loops(tmp_path, code):
    assert run(tmp_path, "kernel-vectorization", code,
               module="repro.core.generator") == []


@pytest.mark.parametrize("code", KERNEL_FLAG)
def test_kernel_vectorization_ignores_non_kernel_modules(tmp_path, code):
    for module in ("repro.system", "repro.core.recvec"):
        assert run(tmp_path, "kernel-vectorization", code,
                   module=module) == [], module


def test_kernel_vectorization_prefixes_configurable(tmp_path):
    config = config_with(kernel_module_prefixes=("mypkg.kernel",))
    code = "def f():\n    for r in rows:\n        g(r)\n"
    found = run(tmp_path, "kernel-vectorization", code,
                module="mypkg.kernel.sampler", config=config)
    assert codes(found) == ["RPL510"]
    assert run(tmp_path, "kernel-vectorization", code,
               module="repro.core.generator", config=config) == []


def test_kernel_vectorization_pragma_suppression(tmp_path):
    code = ("def f():\n"
            "    for r in rows:  # reprolint: disable=RPL510\n"
            "        g(r)\n")
    assert run(tmp_path, "kernel-vectorization", code,
               module="repro.core.generator") == []


# ---------------------------------------------------------------------------
# merge-streaming (RPL520)
# ---------------------------------------------------------------------------

MERGE_FLAG = [
    "import numpy as np\n"
    "keys = np.concatenate(list(merge_sorted_runs(paths)))\n",
    "import numpy as np\n"
    "keys = np.concatenate(list(iter_unique_keys(paths)))\n",
    "chunks = list(store.iter_unique())\n",
    "chunks = sorted(merge_sorted_runs(paths))\n",
    "pair = tuple(self.iter_unique_key_chunks())\n",
    "out = external_sort_unique(paths)\n",
    "from repro.dist import external_sort_unique\n"
    "out = external_sort_unique(paths, fan_in=4)\n",
    "import numpy as np\n"
    "arr = np.hstack(tuple(store.iter_unique()))\n",
    "import numpy as np\n"
    "arr = np.concatenate([c for c in iter_unique_keys(paths)])\n",
    "import numpy as np\n"
    "arr = np.concatenate([*iter_unique_keys(paths)])\n",
    "import numpy\n"
    "arr = numpy.vstack(list(merge_sorted_runs(paths)))\n",
]

MERGE_PASS = [
    # Streaming consumption is the point of the engine.
    "for chunk in iter_unique_keys(paths):\n"
    "    consume(chunk)\n",
    # The sanctioned explicit terminal.
    "keys = collect_chunks(iter_unique_keys(paths))\n",
    # Reductions don't hold the stream whole.
    "total = sum(int(c.size) for c in store.iter_unique())\n",
    # Concatenating plain arrays is fine.
    "import numpy as np\n"
    "keys = np.concatenate(parts)\n",
    # list() over something that is not a merge stream.
    "names = list(paths)\n",
]


@pytest.mark.parametrize("code", MERGE_FLAG)
def test_merge_streaming_flags_materialization(tmp_path, code):
    for module in ("repro.models.snippet", "repro.dist.snippet"):
        found = run(tmp_path, "merge-streaming", code, module=module)
        assert codes(found) == ["RPL520"], (module, found)


@pytest.mark.parametrize("code", MERGE_PASS)
def test_merge_streaming_passes_streaming_consumers(tmp_path, code):
    assert run(tmp_path, "merge-streaming", code,
               module="repro.models.snippet") == []


@pytest.mark.parametrize("code", MERGE_FLAG)
def test_merge_streaming_ignores_engine_and_test_layers(tmp_path, code):
    # The engine itself (repro.util) and out-of-scope layers may
    # materialize: external_sort_unique *is* collect_chunks there.
    for module in ("repro.util.external_sort", "repro.analysis.foo"):
        assert run(tmp_path, "merge-streaming", code,
                   module=module) == [], module


def test_merge_streaming_prefixes_configurable(tmp_path):
    config = config_with(merge_stream_module_prefixes=("mypkg.sinks",))
    code = "out = external_sort_unique(paths)\n"
    found = run(tmp_path, "merge-streaming", code,
                module="mypkg.sinks.writer", config=config)
    assert codes(found) == ["RPL520"]
    assert run(tmp_path, "merge-streaming", code,
               module="repro.models.snippet", config=config) == []


def test_merge_streaming_pragma_suppression(tmp_path):
    code = ("keys = list(merge_sorted_runs(paths))"
            "  # reprolint: disable=RPL520\n")
    assert run(tmp_path, "merge-streaming", code,
               module="repro.models.snippet") == []
