"""Runtime contracts: toggle semantics and the boundary wire-ins."""

from __future__ import annotations

import numpy as np
import pytest

from repro import contracts
from repro.core.noise import noisy_seed_matrices
from repro.core.rng import stream
from repro.core.seed import GRAPH500
from repro.errors import ContractViolation
from repro.models.rmat import RmatMemGenerator


@pytest.fixture()
def contracts_on():
    contracts.enable_contracts(True)
    yield
    contracts.enable_contracts(None)


class _Denormalized:
    """Stands in for a SeedMatrix whose construction-time renormalization
    was bypassed — the exact failure the contract exists to catch."""

    entries = np.array([[0.5, 0.3], [0.3, 0.3]])


# ---------------------------------------------------------------------------
# toggling
# ---------------------------------------------------------------------------

def test_disabled_by_default_and_free(monkeypatch):
    monkeypatch.delenv(contracts.ENV_VAR, raising=False)
    contracts.enable_contracts(None)
    assert not contracts.contracts_enabled()
    # no-ops on garbage when disabled
    contracts.check_probability_vector([2.0, 3.0])
    contracts.check_seed_matrix(_Denormalized())
    contracts.check_partition_cover([], 0, 10)


def test_env_var_enables(monkeypatch):
    contracts.enable_contracts(None)
    monkeypatch.setenv(contracts.ENV_VAR, "1")
    assert contracts.contracts_enabled()
    monkeypatch.setenv(contracts.ENV_VAR, "off")
    assert not contracts.contracts_enabled()


def test_api_override_beats_env(monkeypatch):
    monkeypatch.setenv(contracts.ENV_VAR, "1")
    contracts.enable_contracts(False)
    try:
        assert not contracts.contracts_enabled()
    finally:
        contracts.enable_contracts(None)


# ---------------------------------------------------------------------------
# the checks themselves
# ---------------------------------------------------------------------------

def test_probability_vector_good_and_bad(contracts_on):
    contracts.check_probability_vector([0.25, 0.25, 0.5])
    with pytest.raises(ContractViolation, match="sum"):
        contracts.check_probability_vector([0.25, 0.25])
    with pytest.raises(ContractViolation, match="negative"):
        contracts.check_probability_vector([1.5, -0.5])
    with pytest.raises(ContractViolation, match="non-finite"):
        contracts.check_probability_vector([np.nan, 1.0])
    with pytest.raises(ContractViolation, match="empty"):
        contracts.check_probability_vector([])


def test_seed_matrix_contract_trips_on_denormalized(contracts_on):
    contracts.check_seed_matrix(GRAPH500)           # the paper's seed: fine
    with pytest.raises(ContractViolation, match="sum"):
        contracts.check_seed_matrix(_Denormalized())
    with pytest.raises(ContractViolation, match="square"):
        contracts.check_seed_matrix(np.array([[0.5, 0.5]]))


def test_partition_cover_good_and_bad(contracts_on):
    contracts.check_partition_cover([(0, 4), (4, 10)], 0, 10)
    with pytest.raises(ContractViolation, match="gap or overlap"):
        contracts.check_partition_cover([(0, 4), (5, 10)], 0, 10)
    with pytest.raises(ContractViolation, match="gap or overlap"):
        contracts.check_partition_cover([(0, 6), (4, 10)], 0, 10)
    with pytest.raises(ContractViolation, match="end at"):
        contracts.check_partition_cover([(0, 4)], 0, 10)
    with pytest.raises(ContractViolation, match="empty"):
        contracts.check_partition_cover([(0, 4), (4, 4), (4, 10)], 0, 10)
    with pytest.raises(ContractViolation, match="no ranges"):
        contracts.check_partition_cover([], 0, 10)


# ---------------------------------------------------------------------------
# boundary wire-ins
# ---------------------------------------------------------------------------

def test_model_boundary_trips_on_denormalized_seed_matrix(contracts_on):
    with pytest.raises(ContractViolation):
        RmatMemGenerator(scale=4, seed_matrix=_Denormalized())


def test_model_boundary_passes_on_real_seed_matrix(contracts_on):
    edges = RmatMemGenerator(scale=5, seed=3).generate()
    assert edges.shape[1] == 2


def test_noise_stack_contract_passes(contracts_on):
    matrices = noisy_seed_matrices(GRAPH500, levels=8, noise=0.05,
                                   rng=stream(11))
    assert len(matrices) == 8


def test_range_partition_cover_contract_passes(contracts_on):
    from repro.core.generator import RecursiveVectorGenerator
    from repro.dist.partition import range_partition

    gen = RecursiveVectorGenerator(scale=8, edge_factor=8, seed=5)
    ranges = range_partition(gen, 4)
    assert ranges[0].start == 0
    assert ranges[-1].stop == gen.num_vertices
