"""End-to-end pipeline tests: generate → write → verify → convert →
analyze, exercising the public API the way a downstream user would."""

import numpy as np
import pytest

from repro import GRAPH500, RecursiveVectorGenerator, TrillionG
from repro.analysis import (build_csr, bfs_parents, fit_kronecker_class_slope,
                            graph_stats, out_degrees, pagerank,
                            reachable_count, symmetrize)
from repro.dist import ClusterSpec
from repro.fit import GraphScaler
from repro.formats import get_format, write_many
from repro.rich_graph import (RichGraphGenerator, bibliographical_config,
                              load_config, save_config)
from repro.validate import validate_edges


class TestGenerateWriteVerifyPipeline:
    def test_full_pipeline_single_file(self, tmp_path):
        """generate -> adj6 -> verify -> convert -> tsv -> same graph."""
        tg = TrillionG(scale=12, edge_factor=16, seed=100)
        result = tg.generate_to(tmp_path / "g.adj6", fmt="adj6")

        edges = get_format("adj6").read_edges(result.paths[0])
        report = validate_edges(edges, tg.num_vertices,
                                seed_matrix=GRAPH500,
                                expected_edges=tg.num_edges)
        assert report.ok, str(report)

        tsv = get_format("tsv").write_edges(tmp_path / "g.tsv", edges,
                                            tg.num_vertices)
        back = get_format("tsv").read_edges(tsv.path)
        np.testing.assert_array_equal(np.sort(back, axis=0),
                                      np.sort(edges, axis=0))

    def test_distributed_pipeline(self, tmp_path):
        """cluster generate -> parts -> merge -> validate -> analyze."""
        tg = TrillionG(scale=12, edge_factor=8, seed=101, block_size=256,
                       cluster=ClusterSpec(machines=2,
                                           threads_per_machine=2))
        result = tg.generate_to(tmp_path / "parts", fmt="adj6",
                                processes=1)
        parts = [get_format("adj6").read_edges(p) for p in result.paths]
        edges = np.concatenate([p for p in parts if p.size])
        assert validate_edges(edges, tg.num_vertices,
                              seed_matrix=GRAPH500,
                              expected_edges=tg.num_edges).ok
        stats = graph_stats(edges, tg.num_vertices)
        assert stats.is_simple

    def test_multiformat_then_workload(self, tmp_path):
        """one generation pass -> 3 formats -> BFS + PageRank on CSR."""
        g = RecursiveVectorGenerator(11, 16, seed=102)
        outputs = {name: tmp_path / f"w.{name}"
                   for name in ("tsv", "adj6", "csr6")}
        results = write_many(g.iter_adjacency(), g.num_vertices, outputs)
        assert len({r.num_edges for r in results.values()}) == 1

        edges = get_format("csr6").read_edges(outputs["csr6"])
        und = symmetrize(edges, g.num_vertices)
        indptr, indices = build_csr(und, g.num_vertices)
        parent = bfs_parents(indptr, indices, 0, g.num_vertices)
        assert reachable_count(parent) > g.num_vertices // 2
        pr = pagerank(edges, g.num_vertices)
        assert abs(pr.sum() - 1.0) < 1e-9


class TestFitRegeneratePipeline:
    def test_observe_fit_scale_validate(self, tmp_path):
        """observed graph -> fit -> scale 4x -> validate against fit."""
        observed = RecursiveVectorGenerator(11, 12, seed=103).edges()
        scaler = GraphScaler.fit(observed, 2048)
        scaled = scaler.scale_to(13, seed=104)
        report = validate_edges(scaled, 1 << 13,
                                seed_matrix=scaler.seed_matrix,
                                expected_edges=12 * (1 << 13))
        assert report.ok, str(report)


class TestRichGraphPipeline:
    def test_schema_roundtrip_generation_and_queries(self, tmp_path):
        """config file -> rich graph -> triples -> per-predicate slopes."""
        cfg = bibliographical_config(1 << 12)
        path = save_config(cfg, tmp_path / "schema.json")
        loaded = load_config(path)
        gen = RichGraphGenerator(loaded, seed=105)
        typed = gen.generate()
        # The author rectangle keeps its Zipfian out-degree through the
        # whole save/load/generate pipeline.
        author = typed[0]
        src_lo, src_hi = loaded.vertex_range("researcher")
        deg = np.bincount(author.edges[:, 0] - src_lo,
                          minlength=src_hi - src_lo)
        assert abs(fit_kronecker_class_slope(deg) + 1.662) < 0.35

    def test_triples_to_tsv_per_predicate(self, tmp_path):
        cfg = bibliographical_config(1 << 10)
        gen = RichGraphGenerator(cfg, seed=106)
        count = gen.write_ntriples(tmp_path / "bib.nt")
        lines = (tmp_path / "bib.nt").read_text().strip().split("\n")
        assert len(lines) == count
        predicates = {line.split("\t")[1] for line in lines}
        assert predicates == {"author", "publishedIn", "presentedIn"}


class TestCrossEngineEndToEnd:
    @pytest.mark.parametrize("engine", ["vectorized", "bitwise"])
    def test_any_engine_through_full_stack(self, engine, tmp_path):
        g = RecursiveVectorGenerator(10, 16, seed=107, engine=engine)
        fmt = get_format("adj6")
        res = fmt.write(tmp_path / f"{engine}.adj6", g.iter_adjacency(),
                        g.num_vertices)
        edges = fmt.read_edges(res.path)
        assert validate_edges(edges, 1024, seed_matrix=GRAPH500,
                              expected_edges=g.num_edges).ok
