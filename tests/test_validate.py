"""Tests for the output validator (repro.validate)."""

import numpy as np
import pytest

from repro import GRAPH500, RecursiveVectorGenerator, SeedMatrix
from repro.validate import Check, ValidationReport, validate_edges


class TestChecksPass:
    def test_good_graph_passes_everything(self):
        g = RecursiveVectorGenerator(12, 16, seed=1)
        report = validate_edges(g.edges(), g.num_vertices,
                                seed_matrix=GRAPH500,
                                expected_edges=g.num_edges)
        assert report.ok, str(report)
        names = {c.name for c in report.checks}
        assert names == {"shape", "ids-in-range", "no-duplicate-edges",
                         "edge-count", "zipf-slope"}

    def test_empty_graph(self):
        report = validate_edges(np.empty((0, 2), dtype=np.int64), 16)
        assert report.ok

    def test_optional_checks_skipped(self):
        g = RecursiveVectorGenerator(9, 8, seed=2)
        report = validate_edges(g.edges(), 512)
        names = {c.name for c in report.checks}
        assert "edge-count" not in names
        assert "zipf-slope" not in names


class TestChecksFail:
    def test_out_of_range_detected(self):
        edges = np.array([[0, 99]])
        report = validate_edges(edges, 16)
        assert not report.ok
        assert report.failed()[0].name == "ids-in-range"

    def test_duplicates_detected(self):
        edges = np.array([[1, 2], [1, 2]])
        report = validate_edges(edges, 16)
        assert any(c.name == "no-duplicate-edges" and not c.passed
                   for c in report.checks)

    def test_duplicates_allowed_when_not_expected_simple(self):
        edges = np.array([[1, 2], [1, 2]])
        report = validate_edges(edges, 16, expect_simple=False)
        assert report.ok

    def test_wrong_edge_count_detected(self):
        g = RecursiveVectorGenerator(10, 8, seed=3)
        edges = g.edges()[:100]
        report = validate_edges(edges, 1024, expected_edges=8192)
        assert any(c.name == "edge-count" and not c.passed
                   for c in report.checks)

    def test_wrong_slope_detected(self):
        """A uniform graph fails the Graph500 slope check."""
        from repro.core.seed import UNIFORM
        g = RecursiveVectorGenerator(12, 16, UNIFORM, seed=4)
        report = validate_edges(g.edges(), g.num_vertices,
                                seed_matrix=GRAPH500)
        assert any(c.name == "zipf-slope" and not c.passed
                   for c in report.checks)

    def test_bad_shape_short_circuits(self):
        report = validate_edges(np.zeros((3, 3), dtype=np.int64), 16)
        assert not report.ok
        assert len(report.checks) == 1

    def test_hub_clipping_tolerated(self):
        """At tiny scales with saturated hubs the realized count falls
        below target legitimately; the validator must not flag it."""
        g = RecursiveVectorGenerator(6, 32, seed=5)
        edges = g.edges()
        report = validate_edges(edges, 64, expected_edges=g.num_edges)
        count_check = next(c for c in report.checks
                           if c.name == "edge-count")
        assert count_check.passed, count_check.detail


class TestReportFormatting:
    def test_str_contains_marks(self):
        report = ValidationReport([Check("a", True, "fine"),
                                   Check("b", False, "broken")])
        text = str(report)
        assert "[PASS] a" in text
        assert "[FAIL] b" in text

    def test_failed_list(self):
        report = ValidationReport([Check("a", True, ""),
                                   Check("b", False, "")])
        assert [c.name for c in report.failed()] == ["b"]
