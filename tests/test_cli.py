"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.formats import get_format


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_args(self):
        args = build_parser().parse_args(
            ["generate", "--scale", "10", "--output", "x.adj6"])
        assert args.scale == 10
        assert args.format == "adj6"

    def test_version(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--version"])


class TestGenerate:
    def test_basic(self, tmp_path, capsys):
        out = tmp_path / "g.adj6"
        assert main(["generate", "--scale", "9", "--output",
                     str(out)]) == 0
        assert out.exists()
        assert "generated |V|=512" in capsys.readouterr().out

    def test_custom_matrix(self, tmp_path):
        out = tmp_path / "u.tsv"
        assert main(["generate", "--scale", "8", "--format", "tsv",
                     "--matrix", "0.25,0.25,0.25,0.25",
                     "--output", str(out)]) == 0
        assert out.exists()

    def test_bad_matrix(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["generate", "--scale", "8", "--matrix", "0.5,0.5",
                  "--output", str(tmp_path / "x")])

    def test_distributed(self, tmp_path, capsys):
        out = tmp_path / "parts"
        assert main(["generate", "--scale", "10", "--machines", "2",
                     "--threads", "1", "--output", str(out)]) == 0
        assert "part-0000" in capsys.readouterr().out

    def test_noise(self, tmp_path):
        assert main(["generate", "--scale", "9", "--noise", "0.1",
                     "--output", str(tmp_path / "n.adj6")]) == 0


class TestOtherCommands:
    @pytest.fixture()
    def graph_file(self, tmp_path):
        path = tmp_path / "g.adj6"
        main(["generate", "--scale", "9", "--seed", "3",
              "--output", str(path)])
        return path

    def test_stats(self, graph_file, capsys):
        assert main(["stats", "--input", str(graph_file)]) == 0
        out = capsys.readouterr().out
        assert "|E|=" in out and "simple=True" in out

    def test_degrees(self, graph_file, capsys):
        assert main(["degrees", "--input", str(graph_file)]) == 0
        lines = capsys.readouterr().out.strip().split("\n")
        assert lines[0] == "degree\tcount"
        assert len(lines) > 5

    def test_degrees_in_direction(self, graph_file, capsys):
        assert main(["degrees", "--input", str(graph_file),
                     "--direction", "in"]) == 0

    def test_convert_roundtrip(self, graph_file, tmp_path, capsys):
        tsv = tmp_path / "g.tsv"
        assert main(["convert", "--input", str(graph_file),
                     "--from", "adj6", "--to", "tsv",
                     "--output", str(tsv)]) == 0
        a = get_format("adj6").read_edges(graph_file)
        b = get_format("tsv").read_edges(tsv)
        np.testing.assert_array_equal(np.sort(a, axis=0),
                                      np.sort(b, axis=0))

    def test_rich(self, tmp_path, capsys):
        out = tmp_path / "bib.nt"
        assert main(["rich", "--vertices", "1024",
                     "--output", str(out)]) == 0
        assert out.exists()
        assert "triples=" in capsys.readouterr().out

    @pytest.mark.parametrize("figure", ["11a", "11b", "12", "14"])
    def test_simulate(self, figure, capsys):
        assert main(["simulate", "--figure", figure]) == 0
        out = capsys.readouterr().out
        assert out.startswith("model\t")
        assert len(out.strip().split("\n")) > 4


class TestFitCommand:
    @pytest.fixture()
    def graph_file(self, tmp_path):
        path = tmp_path / "g.adj6"
        main(["generate", "--scale", "11", "--seed", "5",
              "--output", str(path)])
        return path

    def test_fit_prints_matrix(self, graph_file, capsys):
        assert main(["fit", "--input", str(graph_file),
                     "--vertices", "2048"]) == 0
        out = capsys.readouterr().out
        assert "fitted seed matrix" in out
        assert "out-slope" in out

    def test_fit_and_rescale(self, graph_file, tmp_path, capsys):
        out_path = tmp_path / "scaled.adj6"
        assert main(["fit", "--input", str(graph_file),
                     "--vertices", "2048", "--rescale", "12",
                     "--output", str(out_path)]) == 0
        assert out_path.exists()
        assert "rescaled to scale 12" in capsys.readouterr().out

    def test_rescale_requires_output(self, graph_file):
        with pytest.raises(SystemExit):
            main(["fit", "--input", str(graph_file),
                  "--vertices", "2048", "--rescale", "12"])


class TestVerifyCommand:
    def test_verify_good_graph(self, tmp_path, capsys):
        path = tmp_path / "ok.adj6"
        main(["generate", "--scale", "11", "--seed", "1",
              "--output", str(path)])
        rc = main(["verify", "--input", str(path),
                   "--vertices", "2048", "--expected-edges", "32768"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "[PASS]" in out and "[FAIL]" not in out

    def test_verify_flags_wrong_slope(self, tmp_path, capsys):
        path = tmp_path / "uniform.adj6"
        main(["generate", "--scale", "11", "--seed", "1",
              "--matrix", "0.25,0.25,0.25,0.25", "--output", str(path)])
        rc = main(["verify", "--input", str(path), "--vertices", "2048"])
        assert rc == 1
        assert "[FAIL] zipf-slope" in capsys.readouterr().out


class TestRichConfigFile:
    def test_dump_and_reuse_config(self, tmp_path, capsys):
        cfg_path = tmp_path / "schema.json"
        out1 = tmp_path / "a.nt"
        out2 = tmp_path / "b.nt"
        assert main(["rich", "--vertices", "1024",
                     "--output", str(out1),
                     "--dump-config", str(cfg_path)]) == 0
        assert cfg_path.exists()
        assert main(["rich", "--config", str(cfg_path),
                     "--output", str(out2)]) == 0
        assert out1.read_text() == out2.read_text()


class TestNaryCommand:
    def test_generate_3x3(self, tmp_path, capsys):
        out = tmp_path / "n.tsv"
        assert main(["nary", "--matrix",
                     "0.3,0.12,0.08,0.12,0.1,0.05,0.08,0.05,0.1",
                     "--depth", "5", "--edges", "2000",
                     "--output", str(out)]) == 0
        assert "n=3 |V|=243" in capsys.readouterr().out
        back = get_format("tsv").read_edges(out)
        assert back.max() < 243

    def test_rejects_non_square_matrix(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["nary", "--matrix", "0.5,0.3,0.2", "--depth", "4",
                  "--output", str(tmp_path / "x.tsv")])


class TestBaselineAndAnalyze:
    def test_baseline_generates(self, tmp_path, capsys):
        out = tmp_path / "rmat.tsv"
        assert main(["baseline", "--model", "RMAT-mem", "--scale", "10",
                     "--output", str(out)]) == 0
        assert "RMAT-mem" in capsys.readouterr().out
        assert out.exists()

    def test_baseline_unknown_model(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["baseline", "--model", "nonsense", "--scale", "10",
                  "--output", str(tmp_path / "x.tsv")])

    def test_analyze(self, tmp_path, capsys):
        path = tmp_path / "a.adj6"
        main(["generate", "--scale", "10", "--output", str(path)])
        assert main(["analyze", "--input", str(path),
                     "--vertices", "1024"]) == 0
        out = capsys.readouterr().out
        assert "zipf class slope" in out
        assert "eff. diameter" in out


class TestExperimentCommand:
    def test_list(self, capsys):
        assert main(["experiment", "--list"]) == 0
        assert "fig12" in capsys.readouterr().out

    def test_run_table2(self, capsys):
        assert main(["experiment", "--id", "table2"]) == 0
        assert "RecVec" in capsys.readouterr().out


class TestPlanCommand:
    def test_default_plan(self, capsys):
        assert main(["plan"]) == 0
        out = capsys.readouterr().out
        assert "best method: TrillionG (ADJ6)" in out
        assert "max scale 38" in out

    def test_with_budget_and_target(self, capsys):
        assert main(["plan", "--hours", "2",
                     "--target-scale", "40"]) == 0
        out = capsys.readouterr().out
        assert "time budget: 2 h" in out
        assert "machines needed for scale 40" in out


class TestMergeCommand:
    def test_merge_parts(self, tmp_path, capsys):
        # block_size default exceeds |V| at small scales, so generate via
        # the library with finer blocks to force multiple parts.
        from repro.core.generator import RecursiveVectorGenerator
        from repro.dist import ClusterSpec, LocalCluster
        g = RecursiveVectorGenerator(11, 8, seed=2, block_size=128)
        result = LocalCluster(ClusterSpec(1, 3)).generate_to_files(
            g, tmp_path / "parts", "adj6", processes=1)
        assert len(result.paths) >= 2
        out = tmp_path / "full.adj6"
        rc = main(["merge", "--parts",
                   *[str(p) for p in result.paths],
                   "--vertices", "2048", "--output", str(out)])
        assert rc == 0
        assert "merged" in capsys.readouterr().out
        back = get_format("adj6").read_edges(out)
        assert back.shape[0] == result.num_edges
