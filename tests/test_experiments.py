"""Tests for the programmatic experiment harness."""

import pytest

from repro.experiments import (EXPERIMENTS, available_experiments,
                               run_experiment)


class TestRegistry:
    def test_all_figures_and_tables_covered(self):
        """Every evaluation artifact of the paper has an experiment id
        (Table 1 is pure metadata and lives in the models; all others
        are here)."""
        ids = set(available_experiments())
        assert {"table2", "table3", "fig8", "fig9", "fig10",
                "fig11a", "fig11a-measured", "fig11b", "fig12",
                "fig13", "fig14", "fig14-measured"} <= ids

    def test_descriptions_present(self):
        for exp_id, (description, fn) in EXPERIMENTS.items():
            assert description
            assert callable(fn)

    def test_unknown_id(self):
        with pytest.raises(KeyError):
            run_experiment("fig99")


class TestRowShapes:
    def test_table2(self):
        rows = run_experiment("table2")
        assert len(rows) == 3
        assert rows[2]["structure"] == "RecVec"
        assert rows[2]["entries"] < rows[0]["entries"]

    def test_fig9_monotone_noise_column(self):
        rows = run_experiment("fig9")
        noises = [r["noise"] for r in rows]
        assert noises == [0.0, 0.05, 0.1]
        assert rows[2]["oscillation"] < rows[0]["oscillation"]

    def test_fig11a_paper_scale(self):
        rows = run_experiment("fig11a")
        assert len(rows) == 36
        oom_cells = [r for r in rows if r["elapsed"] == "O.O.M"]
        assert oom_cells   # the in-memory models OOM at high scales

    def test_fig12(self):
        rows = run_experiment("fig12")
        assert [r["scale"] for r in rows] == list(range(33, 39))
        assert rows[0]["peak_mem_MB"] == 122   # paper's published value

    def test_fig13_eight_combos(self):
        rows = run_experiment("fig13")
        assert len(rows) == 8
        all_on = next(r for r in rows
                      if r["idea1"] and r["idea2"] and r["idea3"])
        all_off = next(r for r in rows
                       if not (r["idea1"] or r["idea2"] or r["idea3"]))
        assert all_on["recursions"] < all_off["recursions"]

    def test_fig10_two_sides(self):
        rows = run_experiment("fig10")
        assert {r["side"] for r in rows} == {"out (researcher)",
                                             "in (paper)"}

    def test_fig14_measured_phases(self):
        rows = run_experiment("fig14-measured")
        phases = {r["phase"] for r in rows}
        assert {"generate", "scramble", "construct",
                "construction_ratio"} <= phases
