"""Tests for gMark-style graph configurations."""

import pytest

from repro.errors import ConfigurationError
from repro.rich_graph.config import (EdgeRule, GraphConfig, NodeType,
                                     Predicate, bibliographical_config)
from repro.rich_graph.distributions import Gaussian, Uniform, Zipfian


def minimal_config(**overrides):
    kwargs = dict(
        num_vertices=1000,
        num_edges=5000,
        node_types=[NodeType("a", 0.6), NodeType("b", 0.4)],
        predicates=[Predicate("links", 1.0)],
        rules=[EdgeRule("a", "links", "b", Zipfian(-1.5), Gaussian())],
    )
    kwargs.update(overrides)
    return GraphConfig(**kwargs)


class TestValidation:
    def test_valid_config(self):
        cfg = minimal_config()
        assert cfg.num_vertices == 1000

    def test_type_ratios_must_sum_to_one(self):
        with pytest.raises(ConfigurationError):
            minimal_config(node_types=[NodeType("a", 0.5),
                                       NodeType("b", 0.3)])

    def test_predicate_ratios_must_sum_to_one(self):
        with pytest.raises(ConfigurationError):
            minimal_config(predicates=[Predicate("links", 0.5)])

    def test_unknown_source_type(self):
        with pytest.raises(ConfigurationError):
            minimal_config(rules=[EdgeRule("zzz", "links", "b",
                                           Zipfian(-1.5), Gaussian())])

    def test_unknown_predicate(self):
        with pytest.raises(ConfigurationError):
            minimal_config(rules=[EdgeRule("a", "cites", "b",
                                           Zipfian(-1.5), Gaussian())])

    def test_predicate_without_rule(self):
        with pytest.raises(ConfigurationError):
            minimal_config(predicates=[Predicate("links", 0.5),
                                       Predicate("orphan", 0.5)])

    def test_duplicate_type_names(self):
        with pytest.raises(ConfigurationError):
            minimal_config(node_types=[NodeType("a", 0.5),
                                       NodeType("a", 0.5)])

    def test_bad_ratio(self):
        with pytest.raises(ConfigurationError):
            NodeType("x", 1.5)
        with pytest.raises(ConfigurationError):
            Predicate("p", 0.0)


class TestRanges:
    def test_vertex_ranges_partition_space(self):
        cfg = bibliographical_config(10000)
        ranges = [cfg.vertex_range(t.name) for t in cfg.node_types]
        assert ranges[0][0] == 0
        assert ranges[-1][1] == 10000
        for (a, b), (c, d) in zip(ranges, ranges[1:]):
            assert b == c

    def test_last_type_absorbs_remainder(self):
        cfg = minimal_config(num_vertices=1001)
        assert cfg.vertex_range("b")[1] == 1001

    def test_type_of_vertex(self):
        cfg = minimal_config()
        assert cfg.type_of_vertex(0) == "a"
        assert cfg.type_of_vertex(599) == "a"
        assert cfg.type_of_vertex(600) == "b"
        with pytest.raises(ConfigurationError):
            cfg.type_of_vertex(5000)

    def test_unknown_type_range(self):
        with pytest.raises(ConfigurationError):
            minimal_config().vertex_range("nope")


class TestBudgets:
    def test_rule_edge_budget_splits_predicate(self):
        cfg = GraphConfig(
            num_vertices=1000, num_edges=1000,
            node_types=[NodeType("a", 0.5), NodeType("b", 0.5)],
            predicates=[Predicate("p", 1.0)],
            rules=[
                EdgeRule("a", "p", "b", Gaussian(), Gaussian()),
                EdgeRule("b", "p", "a", Gaussian(), Gaussian()),
            ])
        for rule in cfg.rules:
            assert cfg.rule_edge_budget(rule) == 500

    def test_predicate_ids_stable(self):
        cfg = bibliographical_config()
        assert cfg.predicate_id("author") == 0
        assert cfg.predicate_id("publishedIn") == 1
        assert cfg.predicate_id("presentedIn") == 2


class TestBibliographical:
    def test_matches_figure7(self):
        cfg = bibliographical_config()
        names = {t.name: t.ratio for t in cfg.node_types}
        assert names == {"researcher": 0.5, "paper": 0.3,
                         "journal": 0.1, "conference": 0.1}
        author = cfg.rules[0]
        assert author.source == "researcher"
        assert author.target == "paper"
        assert isinstance(author.out_distribution, Zipfian)
        assert isinstance(author.in_distribution, Gaussian)
        assert cfg.predicate_ratio("author") == 0.5

    def test_default_edges(self):
        cfg = bibliographical_config(2048)
        assert cfg.num_edges == 2048 * 8
