"""Tests for the built-in rich-graph schemas."""

import numpy as np
import pytest

from repro.analysis import fit_gaussian, fit_kronecker_class_slope
from repro.errors import ConfigurationError
from repro.rich_graph import (BUILTIN_SCHEMAS, RichGraphGenerator,
                              builtin_schema, snb_config, sp2bench_config,
                              watdiv_config)


class TestRegistry:
    def test_four_schemas(self):
        """gMark's four built-in schemas (Section 8)."""
        assert set(BUILTIN_SCHEMAS) == {"bibliographical", "watdiv",
                                        "snb", "sp2bench"}

    def test_lookup_case_insensitive(self):
        assert builtin_schema("WatDiv", 1024).num_vertices == 1024

    def test_unknown_rejected(self):
        with pytest.raises(ConfigurationError):
            builtin_schema("tpc-h")


@pytest.mark.parametrize("name", sorted(BUILTIN_SCHEMAS))
class TestAllSchemasGenerate:
    def test_valid_and_generates(self, name):
        cfg = builtin_schema(name, 1 << 12)
        typed = RichGraphGenerator(cfg, seed=3).generate()
        assert len(typed) == len(cfg.rules)
        for t in typed:
            src_lo, src_hi = cfg.vertex_range(t.rule.source)
            dst_lo, dst_hi = cfg.vertex_range(t.rule.target)
            if t.num_edges:
                assert t.edges[:, 0].min() >= src_lo
                assert t.edges[:, 0].max() < src_hi
                assert t.edges[:, 1].min() >= dst_lo
                assert t.edges[:, 1].max() < dst_hi

    def test_deterministic(self, name):
        cfg = builtin_schema(name, 1 << 10)
        a = RichGraphGenerator(cfg, seed=4).all_triples()
        b = RichGraphGenerator(cfg, seed=4).all_triples()
        np.testing.assert_array_equal(a, b)

    def test_json_roundtrip(self, name, tmp_path):
        from repro.rich_graph import load_config, save_config
        cfg = builtin_schema(name, 1 << 10)
        path = save_config(cfg, tmp_path / f"{name}.json")
        back = load_config(path)
        assert back.num_edges == cfg.num_edges
        assert len(back.rules) == len(cfg.rules)


class TestSchemaSemantics:
    def test_watdiv_product_reviews_skewed(self):
        """Popular products gather most reviews (Zipfian in-degree)."""
        cfg = watdiv_config(1 << 13)
        typed = RichGraphGenerator(cfg, seed=5).generate()
        reviews = typed[0]
        dst_lo, dst_hi = cfg.vertex_range("product")
        in_deg = np.bincount(reviews.edges[:, 1] - dst_lo,
                             minlength=dst_hi - dst_lo)
        top_share = np.sort(in_deg)[::-1][:len(in_deg) // 100].sum() \
            / max(in_deg.sum(), 1)
        assert top_share > 0.05   # top 1% of products >5% of reviews

    def test_snb_knows_power_law_both_sides(self):
        cfg = snb_config(1 << 13)
        typed = RichGraphGenerator(cfg, seed=6).generate()
        knows = typed[0]
        lo, hi = cfg.vertex_range("person")
        out_deg = np.bincount(knows.edges[:, 0] - lo, minlength=hi - lo)
        in_deg = np.bincount(knows.edges[:, 1] - lo, minlength=hi - lo)
        assert abs(fit_kronecker_class_slope(out_deg) + 1.5) < 0.4
        assert not fit_gaussian(out_deg).looks_gaussian
        assert not fit_gaussian(in_deg).looks_gaussian

    def test_sp2bench_authorship_gaussian_in(self):
        cfg = sp2bench_config(1 << 13)
        typed = RichGraphGenerator(cfg, seed=7).generate()
        creator = typed[0]
        dst_lo, dst_hi = cfg.vertex_range("article")
        in_deg = np.bincount(creator.edges[:, 1] - dst_lo,
                             minlength=dst_hi - dst_lo)
        assert fit_gaussian(in_deg).looks_gaussian

    def test_self_rectangle_rule(self):
        """SNB's person-knows-person rule generates within one range
        (square rectangle on the diagonal)."""
        cfg = snb_config(1 << 11)
        typed = RichGraphGenerator(cfg, seed=8).generate()
        knows = typed[0]
        lo, hi = cfg.vertex_range("person")
        assert knows.edges.min() >= lo
        assert knows.edges.max() < hi
