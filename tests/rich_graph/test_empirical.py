"""Tests for the Empirical (data-dictionary) degree distribution."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.rich_graph import Empirical, ErvGenerator, Gaussian


class TestEmpiricalSpec:
    def test_basic(self):
        d = Empirical([1, 5], [3, 1])
        assert d.kind == "empirical"
        assert abs(d.mean - 2.0) < 1e-12

    def test_from_degree_sequence(self):
        d = Empirical.from_degree_sequence(np.array([2, 2, 2, 7]))
        assert d.degrees.tolist() == [2, 7]
        assert d.weights.tolist() == [3, 1]

    def test_equality(self):
        assert Empirical([1, 2], [1, 1]) == Empirical([1, 2], [1, 1])
        assert Empirical([1, 2], [1, 1]) != Empirical([1, 3], [1, 1])

    def test_repr(self):
        assert "2 degree values" in repr(Empirical([1, 2], [1, 1]))

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Empirical([], [])
        with pytest.raises(ConfigurationError):
            Empirical([1, 2], [1])
        with pytest.raises(ConfigurationError):
            Empirical([-1], [1])
        with pytest.raises(ConfigurationError):
            Empirical([1], [-1])
        with pytest.raises(ConfigurationError):
            Empirical([1, 2], [0, 0])


class TestEmpiricalOutDegrees:
    def test_only_dictionary_values_drawn(self):
        d = Empirical([3, 8, 20], [1, 1, 1])
        g = ErvGenerator(5000, 5000, 0, d, Gaussian(), seed=1)
        degrees = g.out_degrees()
        assert set(degrees.tolist()) <= {3, 8, 20}

    def test_frequencies_respected(self):
        d = Empirical([1, 9], [9, 1])   # 90% degree 1, 10% degree 9
        g = ErvGenerator(20000, 20000, 0, d, Gaussian(), seed=2)
        degrees = g.out_degrees()
        frac_nine = (degrees == 9).mean()
        assert abs(frac_nine - 0.1) < 0.01

    def test_mean_matches_dictionary(self):
        d = Empirical([2, 4, 6], [1, 2, 1])
        g = ErvGenerator(30000, 30000, 0, d, Gaussian(), seed=3)
        assert abs(g.out_degrees().mean() - d.mean) < 0.1


class TestEmpiricalInDegrees:
    def test_popularity_skew_transfers(self):
        """A bimodal popularity dictionary produces a correspondingly
        skewed in-degree distribution."""
        skewed = Empirical([1, 100], [99, 1])   # 1% of dests are hubs
        g = ErvGenerator(4000, 4000, 60000, Gaussian(), skewed, seed=4)
        in_deg = np.bincount(g.edges()[:, 1], minlength=4000)
        # Top 1% of destinations should carry roughly half the edges
        # (popularity 100 * 1% vs 1 * 99%).
        top = np.sort(in_deg)[::-1][:40].sum()
        assert top > 0.3 * in_deg.sum()

    def test_uniform_dictionary_is_flat(self):
        flat = Empirical([5], [1])
        g = ErvGenerator(4000, 4000, 60000, Gaussian(), flat, seed=5)
        in_deg = np.bincount(g.edges()[:, 1], minlength=4000)
        # All destinations equally popular -> binomial in-degrees.
        assert in_deg.std() < 3 * np.sqrt(in_deg.mean())

    def test_deterministic(self):
        d = Empirical([1, 10], [1, 1])
        a = ErvGenerator(500, 500, 3000, Gaussian(), d, seed=6).edges()
        b = ErvGenerator(500, 500, 3000, Gaussian(), d, seed=6).edges()
        np.testing.assert_array_equal(a, b)


class TestRoundTripWorkflow:
    def test_learn_from_graph_and_regenerate(self):
        """The LDBC-style loop: measure a graph's degree dictionary,
        regenerate from it, get the same mean degree back."""
        from repro import RecursiveVectorGenerator
        source = RecursiveVectorGenerator(11, 8, seed=7).edges()
        observed = np.bincount(source[:, 0], minlength=2048)
        d = Empirical.from_degree_sequence(observed)
        g = ErvGenerator(2048, 2048, 0, d, Gaussian(), seed=8)
        regenerated = g.out_degrees()
        # Tolerance ~3 standard errors: the dictionary is heavy-tailed,
        # so the mean of 2048 draws has SE ~ std/sqrt(2048) ~ 0.55.
        standard_error = observed.std() / np.sqrt(observed.size)
        assert abs(regenerated.mean() - observed.mean()) \
            < 3 * standard_error


@settings(max_examples=25)
@given(st.lists(st.tuples(st.integers(0, 30), st.integers(1, 20)),
                min_size=1, max_size=8, unique_by=lambda t: t[0]))
def test_empirical_mean_property(table):
    degrees = [t[0] for t in table]
    weights = [t[1] for t in table]
    d = Empirical(degrees, weights)
    expected = sum(a * w for a, w in table) / sum(weights)
    assert abs(d.mean - expected) < 1e-9
