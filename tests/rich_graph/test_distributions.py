"""Tests for ERV degree-distribution specs and Lemma 6 inversion."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.rich_graph.distributions import (Gaussian, Uniform, Zipfian,
                                            parse_distribution,
                                            seed_for_in_slope,
                                            seed_for_out_slope)


class TestSpecs:
    def test_zipfian_default_slope(self):
        assert Zipfian().slope == -1.662

    def test_zipfian_rejects_positive(self):
        with pytest.raises(ConfigurationError):
            Zipfian(0.5)

    def test_uniform_rejects_bad_range(self):
        with pytest.raises(ConfigurationError):
            Uniform(5, 2)
        with pytest.raises(ConfigurationError):
            Uniform(-1, 2)

    def test_kinds(self):
        assert Zipfian().kind == "zipfian"
        assert Gaussian().kind == "gaussian"
        assert Uniform().kind == "uniform"


class TestSeedInversion:
    def test_out_slope_roundtrip(self):
        for slope in (-0.5, -1.0, -1.662, -2.5):
            k = seed_for_out_slope(slope)
            assert math.isclose(k.out_zipf_slope(), slope, abs_tol=1e-9)

    def test_in_slope_roundtrip(self):
        for slope in (-0.5, -1.662, -3.0):
            k = seed_for_in_slope(slope)
            assert math.isclose(k.in_zipf_slope(), slope, abs_tol=1e-9)

    def test_graph500_slope_reproduced(self):
        """The paper: the Graph500 seed matches Zipf slope -1.662."""
        k = seed_for_out_slope(-1.662)
        # Same row sums as Graph500 (0.76 / 0.24), up to rounding.
        assert math.isclose(float(k.row_sums()[0]), 0.76, abs_tol=1e-3)

    def test_rejects_positive_slope(self):
        with pytest.raises(ConfigurationError):
            seed_for_out_slope(1.0)
        with pytest.raises(ConfigurationError):
            seed_for_in_slope(0.0)

    @given(st.floats(min_value=-4.0, max_value=-0.05))
    def test_inversion_property(self, slope):
        assert math.isclose(seed_for_out_slope(slope).out_zipf_slope(),
                            slope, abs_tol=1e-9)
        assert math.isclose(seed_for_in_slope(slope).in_zipf_slope(),
                            slope, abs_tol=1e-9)


class TestParse:
    def test_zipfian_with_slope(self):
        d = parse_distribution("zipfian:-2.0")
        assert isinstance(d, Zipfian) and d.slope == -2.0

    def test_zipfian_default(self):
        assert parse_distribution("ZIPFIAN").slope == -1.662

    def test_gaussian(self):
        assert isinstance(parse_distribution("gaussian"), Gaussian)

    def test_uniform(self):
        d = parse_distribution("uniform:2:9")
        assert (d.low, d.high) == (2, 9)

    def test_unknown(self):
        with pytest.raises(ConfigurationError):
            parse_distribution("pareto")
