"""Tests for per-edge property generation."""

import numpy as np
import pytest

from repro import RecursiveVectorGenerator
from repro.errors import ConfigurationError
from repro.rich_graph.properties import (CategoricalProperty,
                                         ExponentialProperty,
                                         NormalProperty, PropertyTable,
                                         UniformProperty,
                                         attach_properties)


@pytest.fixture(scope="module")
def edges():
    return RecursiveVectorGenerator(11, 8, seed=1).edges()


class TestSpecs:
    def test_uniform_range(self, edges):
        vals = UniformProperty(10.0, 20.0).sample(edges, 0)
        assert vals.min() >= 10.0 and vals.max() < 20.0
        assert abs(vals.mean() - 15.0) < 0.2

    def test_normal_moments(self, edges):
        vals = NormalProperty(5.0, 2.0).sample(edges, 0)
        assert abs(vals.mean() - 5.0) < 0.1
        assert abs(vals.std() - 2.0) < 0.1

    def test_exponential_mean(self, edges):
        vals = ExponentialProperty(rate=0.5).sample(edges, 0)
        assert vals.min() >= 0
        assert abs(vals.mean() - 2.0) < 0.15

    def test_categorical_frequencies(self, edges):
        vals = CategoricalProperty((3, 1)).sample(edges, 0)
        assert set(np.unique(vals)) <= {0, 1}
        assert abs((vals == 0).mean() - 0.75) < 0.02

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            UniformProperty(5, 5)
        with pytest.raises(ConfigurationError):
            NormalProperty(0, 0)
        with pytest.raises(ConfigurationError):
            ExponentialProperty(0)
        with pytest.raises(ConfigurationError):
            CategoricalProperty(())
        with pytest.raises(ConfigurationError):
            CategoricalProperty((0, 0))


class TestDeterminism:
    def test_same_edge_same_value(self, edges):
        """The core contract: properties are a pure function of the edge,
        independent of array order."""
        table1 = attach_properties(edges, {"w": UniformProperty()}, seed=3)
        shuffled = edges[::-1].copy()
        table2 = attach_properties(shuffled, {"w": UniformProperty()},
                                   seed=3)
        np.testing.assert_array_equal(table1.columns["w"],
                                      table2.columns["w"][::-1])

    def test_seed_changes_values(self, edges):
        a = attach_properties(edges, {"w": UniformProperty()}, seed=1)
        b = attach_properties(edges, {"w": UniformProperty()}, seed=2)
        assert not np.array_equal(a.columns["w"], b.columns["w"])

    def test_properties_independent_of_each_other(self, edges):
        table = attach_properties(
            edges, {"a": UniformProperty(), "b": UniformProperty()},
            seed=1)
        corr = np.corrcoef(table.columns["a"], table.columns["b"])[0, 1]
        assert abs(corr) < 0.05

    def test_distinct_edges_distinct_values_mostly(self, edges):
        table = attach_properties(edges, {"w": UniformProperty()}, seed=4)
        unique_fraction = (np.unique(table.columns["w"]).size
                           / edges.shape[0])
        assert unique_fraction > 0.999


class TestTable:
    def test_records(self):
        edges = np.array([[1, 2], [3, 4]])
        table = attach_properties(
            edges, {"ts": UniformProperty(0, 100),
                    "kind": CategoricalProperty((1, 1))}, seed=5)
        records = table.as_records(edges)
        assert len(records) == 2
        assert set(records[0]) == {"source", "destination", "ts", "kind"}

    def test_rejects_empty_specs(self):
        with pytest.raises(ConfigurationError):
            attach_properties(np.array([[0, 1]]), {})
