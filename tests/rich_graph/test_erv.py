"""Tests for the ERV model and the schema-driven rich generator."""

import numpy as np
import pytest

from repro.analysis import (fit_gaussian, fit_kronecker_class_slope,
                            in_degrees, out_degrees)
from repro.errors import ConfigurationError
from repro.rich_graph import (ErvGenerator, Gaussian, RichGraphGenerator,
                              Uniform, Zipfian, bibliographical_config)


class TestErvGenerator:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ErvGenerator(0, 10, 5, Gaussian(), Gaussian())
        with pytest.raises(ConfigurationError):
            ErvGenerator(10, 10, -1, Gaussian(), Gaussian())
        with pytest.raises(ConfigurationError):
            ErvGenerator(3, 3, 100, Gaussian(), Gaussian())

    def test_edge_count_near_budget(self):
        g = ErvGenerator(4096, 4096, 40000, Zipfian(-1.5), Gaussian(),
                         seed=1)
        e = g.edges()
        assert abs(e.shape[0] - 40000) / 40000 < 0.05

    def test_edges_in_ranges(self):
        g = ErvGenerator(100, 300, 2000, Gaussian(), Gaussian(), seed=2)
        e = g.edges()
        assert e[:, 0].min() >= 0 and e[:, 0].max() < 100
        assert e[:, 1].min() >= 0 and e[:, 1].max() < 300

    def test_no_duplicates(self):
        g = ErvGenerator(256, 256, 5000, Zipfian(-1.0), Zipfian(-1.0),
                         seed=3)
        e = g.edges()
        packed = e[:, 0] * 256 + e[:, 1]
        assert np.unique(packed).size == e.shape[0]

    def test_duplicates_kept_when_dedup_off(self):
        """gMark's behaviour (repeated edges) is reproducible for
        comparison."""
        g = ErvGenerator(16, 16, 200, Gaussian(), Gaussian(),
                         dedup=False, seed=4)
        e = g.edges()
        packed = e[:, 0] * 16 + e[:, 1]
        assert np.unique(packed).size < e.shape[0]

    def test_deterministic(self):
        a = ErvGenerator(128, 128, 2000, Zipfian(-1.5), Gaussian(),
                         seed=5).edges()
        b = ErvGenerator(128, 128, 2000, Zipfian(-1.5), Gaussian(),
                         seed=5).edges()
        np.testing.assert_array_equal(a, b)

    def test_zipfian_out_slope_controlled(self):
        """Lemma 6 control: requested slope appears in the output."""
        for slope in (-1.0, -1.662, -2.2):
            g = ErvGenerator(8192, 8192, 120000, Zipfian(slope),
                             Gaussian(), seed=6)
            deg = np.bincount(g.edges()[:, 0], minlength=8192)
            measured = fit_kronecker_class_slope(deg)
            assert abs(measured - slope) < 0.25

    def test_gaussian_out_degrees(self):
        g = ErvGenerator(4096, 4096, 65536, Gaussian(), Gaussian(), seed=7)
        deg = np.bincount(g.edges()[:, 0], minlength=4096)
        fit = fit_gaussian(deg)
        assert fit.looks_gaussian
        assert abs(fit.mean - 16.0) < 0.5

    def test_uniform_out_degrees(self):
        g = ErvGenerator(2000, 2000, 0, Uniform(2, 5), Gaussian(), seed=8)
        deg = g.out_degrees()
        assert deg.min() >= 2 and deg.max() <= 5

    def test_zipfian_in_degrees_skewed(self):
        g = ErvGenerator(4096, 4096, 65536, Gaussian(), Zipfian(-1.662),
                         seed=9)
        in_deg = np.bincount(g.edges()[:, 1], minlength=4096)
        measured = fit_kronecker_class_slope(in_deg)
        assert abs(measured - (-1.662)) < 0.3

    def test_different_src_dst_ranges(self):
        """The rectangle-matrix mapping covers non-square, non-power-of-
        two destination ranges."""
        g = ErvGenerator(1000, 300, 5000, Zipfian(-1.5), Zipfian(-1.5),
                         seed=10)
        e = g.edges()
        assert e[:, 1].max() < 300
        assert np.unique(e[:, 1]).size > 100


class TestRichGraphGenerator:
    @pytest.fixture(scope="class")
    def generated(self):
        cfg = bibliographical_config(1 << 13)
        return cfg, RichGraphGenerator(cfg, seed=11).generate()

    def test_all_rules_generated(self, generated):
        cfg, typed = generated
        assert len(typed) == len(cfg.rules)

    def test_edges_respect_type_ranges(self, generated):
        cfg, typed = generated
        for t in typed:
            src_lo, src_hi = cfg.vertex_range(t.rule.source)
            dst_lo, dst_hi = cfg.vertex_range(t.rule.target)
            assert t.edges[:, 0].min() >= src_lo
            assert t.edges[:, 0].max() < src_hi
            assert t.edges[:, 1].min() >= dst_lo
            assert t.edges[:, 1].max() < dst_hi

    def test_budgets_respected_for_stochastic_rules(self, generated):
        cfg, typed = generated
        for t in typed:
            if isinstance(t.rule.out_distribution, Uniform):
                continue  # uniform rules are degree-driven, not budgeted
            budget = cfg.rule_edge_budget(t.rule)
            assert abs(t.num_edges - budget) / budget < 0.05

    def test_figure10_property(self, generated):
        """Zipfian out / Gaussian in on the author rectangle."""
        cfg, typed = generated
        author = typed[0]
        src_lo, src_hi = cfg.vertex_range("researcher")
        dst_lo, dst_hi = cfg.vertex_range("paper")
        out_deg = np.bincount(author.edges[:, 0] - src_lo,
                              minlength=src_hi - src_lo)
        in_deg = np.bincount(author.edges[:, 1] - dst_lo,
                             minlength=dst_hi - dst_lo)
        assert abs(fit_kronecker_class_slope(out_deg) + 1.662) < 0.25
        assert fit_gaussian(in_deg).looks_gaussian
        assert not fit_gaussian(out_deg).looks_gaussian

    def test_triples(self, generated):
        cfg, typed = generated
        gen = RichGraphGenerator(cfg, seed=11)
        triples = gen.all_triples()
        assert triples.shape[1] == 3
        assert set(np.unique(triples[:, 1])) == {0, 1, 2}

    def test_no_duplicate_typed_edges(self, generated):
        cfg, typed = generated
        for t in typed:
            packed = (t.edges[:, 0] * cfg.num_vertices) + t.edges[:, 1]
            assert np.unique(packed).size == t.num_edges

    def test_ntriples_output(self, tmp_path):
        cfg = bibliographical_config(1 << 10)
        gen = RichGraphGenerator(cfg, seed=12)
        count = gen.write_ntriples(tmp_path / "bib.nt")
        lines = (tmp_path / "bib.nt").read_text().strip().split("\n")
        assert len(lines) == count
        assert "\tauthor\t" in lines[0] or "\tpublishedIn\t" in lines[0] \
            or "\tpresentedIn\t" in lines[0]

    def test_deterministic(self):
        cfg = bibliographical_config(1 << 10)
        a = RichGraphGenerator(cfg, seed=13).all_triples()
        b = RichGraphGenerator(cfg, seed=13).all_triples()
        np.testing.assert_array_equal(a, b)
