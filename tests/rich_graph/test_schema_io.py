"""Tests for JSON graph-configuration I/O."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.rich_graph import (Empirical, Gaussian, RichGraphGenerator,
                              Uniform, Zipfian, bibliographical_config,
                              config_from_dict, config_to_dict,
                              load_config, save_config)


class TestRoundTrip:
    def test_bibliographical_roundtrip(self, tmp_path):
        cfg = bibliographical_config(4096)
        path = save_config(cfg, tmp_path / "bib.json")
        back = load_config(path)
        assert back.num_vertices == cfg.num_vertices
        assert back.num_edges == cfg.num_edges
        assert [t.name for t in back.node_types] == \
            [t.name for t in cfg.node_types]
        for a, b in zip(back.rules, cfg.rules):
            assert a.out_distribution == b.out_distribution
            assert a.in_distribution == b.in_distribution

    def test_all_distribution_kinds_roundtrip(self):
        for dist in (Zipfian(-1.4), Gaussian(), Uniform(2, 7),
                     Empirical([1, 5], [2, 1])):
            from repro.rich_graph.schema_io import (
                _distribution_from_dict, _distribution_to_dict)
            assert _distribution_from_dict(
                _distribution_to_dict(dist)) == dist

    def test_generation_from_loaded_config(self, tmp_path):
        cfg = bibliographical_config(2048)
        path = save_config(cfg, tmp_path / "g.json")
        loaded = load_config(path)
        a = RichGraphGenerator(cfg, seed=1).all_triples()
        b = RichGraphGenerator(loaded, seed=1).all_triples()
        import numpy as np
        np.testing.assert_array_equal(a, b)

    def test_json_is_readable(self, tmp_path):
        path = save_config(bibliographical_config(1024),
                           tmp_path / "r.json")
        doc = json.loads(path.read_text())
        assert doc["num_vertices"] == 1024
        assert doc["rules"][0]["out_distribution"]["kind"] == "zipfian"


class TestErrors:
    def test_not_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ConfigurationError):
            load_config(path)

    def test_missing_field(self):
        with pytest.raises(ConfigurationError):
            config_from_dict({"num_vertices": 10})

    def test_unknown_distribution_kind(self):
        doc = config_to_dict(bibliographical_config(1024))
        doc["rules"][0]["out_distribution"] = {"kind": "pareto"}
        with pytest.raises(ConfigurationError):
            config_from_dict(doc)

    def test_distribution_missing_kind(self):
        doc = config_to_dict(bibliographical_config(1024))
        doc["rules"][0]["out_distribution"] = {"slope": -1}
        with pytest.raises(ConfigurationError):
            config_from_dict(doc)

    def test_invalid_config_still_validated(self):
        """Loaded documents pass through GraphConfig validation."""
        doc = config_to_dict(bibliographical_config(1024))
        doc["node_types"][0]["ratio"] = 0.9     # ratios no longer sum to 1
        with pytest.raises(ConfigurationError):
            config_from_dict(doc)
